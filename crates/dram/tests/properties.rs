//! Property-based tests for the device model's invariants.

use hammervolt_dram::geometry::Geometry;
use hammervolt_dram::hash;
use hammervolt_dram::mapping::{AddressMapping, Scheme};
use hammervolt_dram::module::DramModule;
use hammervolt_dram::physics::{self, dq_relative, hc_multiplier, qcrit_relative, solve_coeffs};
use hammervolt_dram::registry::{self, ModuleId};
use proptest::prelude::*;

fn any_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Direct),
        Just(Scheme::PairMirror),
        Just(Scheme::BlockShuffle),
    ]
}

fn any_module() -> impl Strategy<Value = ModuleId> {
    prop::sample::select(ModuleId::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mapping_round_trips(scheme in any_scheme(), repairs in 0u32..16, seed in any::<u64>()) {
        let rows = 512;
        let m = AddressMapping::with_repairs(scheme, rows, repairs, seed);
        for logical in 0..rows {
            let phys = m.logical_to_physical(logical);
            prop_assert!(phys < rows);
            prop_assert_eq!(m.physical_to_logical(phys), logical);
        }
    }

    #[test]
    fn neighbors_are_mutual(scheme in any_scheme(), seed in any::<u64>(), row in 1u32..510) {
        let m = AddressMapping::with_repairs(scheme, 512, 8, seed);
        let (below, above) = m.physical_neighbors(row);
        for n in [below, above].into_iter().flatten() {
            let (nb, na) = m.physical_neighbors(n);
            prop_assert!(
                nb == Some(row) || na == Some(row),
                "adjacency must be symmetric: {} vs {}", row, n
            );
        }
    }

    #[test]
    fn solve_coeffs_realizes_any_target(
        target in 0.85..1.9f64,
        vpp_min in 1.4..2.4f64,
        margin in 0.15..0.55f64,
        share in 0.45..0.97f64,
    ) {
        let c = solve_coeffs(target, vpp_min, margin, share);
        let m = hc_multiplier(vpp_min, &c);
        prop_assert!((m - target).abs() < 1e-6, "target {} realized {}", target, m);
        prop_assert!(c.sensitivity >= 0.0);
        // normalization anchor
        prop_assert!((hc_multiplier(physics::VPP_NOMINAL, &c) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dq_and_qcrit_monotone_in_vpp(
        target in 0.85..1.9f64,
        vpp_min in 1.4..2.4f64,
        margin in 0.15..0.55f64,
        share in 0.45..0.97f64,
        v1 in 1.4..2.5f64,
        v2 in 1.4..2.5f64,
    ) {
        let c = solve_coeffs(target, vpp_min, margin, share);
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        prop_assert!(dq_relative(lo, &c) <= dq_relative(hi, &c) + 1e-12);
        prop_assert!(qcrit_relative(lo, &c) <= qcrit_relative(hi, &c) + 1e-12);
    }

    #[test]
    fn uniform01_always_in_range(seed in any::<u64>()) {
        let u = hash::uniform01(seed);
        prop_assert!((0.0..1.0).contains(&u));
        let z = hash::standard_normal(seed);
        prop_assert!(z.is_finite());
    }

    #[test]
    fn set_vpp_respects_vppmin(id in any_module(), step in 0u32..12) {
        let spec = registry::spec(id);
        let vpp_min = spec.vpp_min;
        let mut m = DramModule::with_geometry(spec, 3, Geometry::small_test()).unwrap();
        let vpp = 2.5 - 0.1 * step as f64;
        let result = m.set_vpp(vpp);
        if vpp + 1e-9 >= vpp_min {
            prop_assert!(result.is_ok(), "{:?} rejected {}", id, vpp);
        } else {
            prop_assert!(result.is_err(), "{:?} accepted {} below V_PPmin {}", id, vpp, vpp_min);
        }
    }

    #[test]
    fn data_round_trips_without_stressors(
        id in any_module(),
        seed in any::<u64>(),
        row in 2u32..500,
        word in any::<u64>(),
    ) {
        let mut m =
            DramModule::with_geometry(registry::spec(id), seed, Geometry::small_test()).unwrap();
        let data = vec![word; m.geometry().columns_per_row as usize];
        m.write_row(0, row, &data).unwrap();
        let back = m.read_row(0, row, 30.0).unwrap();
        prop_assert_eq!(back, data);
    }
}
