//! Module geometry: densities, organizations, and address ranges.

use crate::error::DramError;
use serde::{Deserialize, Serialize};

/// Die density of a DDR4 chip, as listed in the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Density {
    /// 4 Gbit die.
    D4Gb,
    /// 8 Gbit die.
    D8Gb,
    /// 16 Gbit die.
    D16Gb,
}

impl Density {
    /// Capacity in bits.
    pub fn bits(&self) -> u64 {
        match self {
            Density::D4Gb => 4 << 30,
            Density::D8Gb => 8 << 30,
            Density::D16Gb => 16 << 30,
        }
    }

    /// Rows per bank for a standard ×8 part of this density (DDR4: 16 banks,
    /// 1 KB page per ×8 chip ⇒ 8 Kb row).
    pub fn rows_per_bank_x8(&self) -> u32 {
        match self {
            Density::D4Gb => 32 * 1024,
            Density::D8Gb => 64 * 1024,
            Density::D16Gb => 128 * 1024,
        }
    }
}

impl std::fmt::Display for Density {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Density::D4Gb => write!(f, "4Gb"),
            Density::D8Gb => write!(f, "8Gb"),
            Density::D16Gb => write!(f, "16Gb"),
        }
    }
}

/// Chip organization: data-bus width per chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChipOrg {
    /// ×4 organization (16 chips per 64-bit rank).
    X4,
    /// ×8 organization (8 chips per 64-bit rank).
    X8,
    /// ×16 organization (4 chips per 64-bit rank).
    X16,
}

impl ChipOrg {
    /// Data bits this chip contributes per beat.
    pub fn width(&self) -> u32 {
        match self {
            ChipOrg::X4 => 4,
            ChipOrg::X8 => 8,
            ChipOrg::X16 => 16,
        }
    }

    /// Chips needed to form a 64-bit rank.
    pub fn chips_per_rank(&self) -> u32 {
        64 / self.width()
    }
}

impl std::fmt::Display for ChipOrg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChipOrg::X4 => write!(f, "x4"),
            ChipOrg::X8 => write!(f, "x8"),
            ChipOrg::X16 => write!(f, "x16"),
        }
    }
}

/// Rank-level geometry of a module as the memory controller sees it.
///
/// The study addresses a module as `banks × rows × (64-bit) columns`: chips in
/// a rank operate in lock-step, so one "row" here is the full rank row (e.g.
/// 8 KB for a ×8 rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of banks (DDR4: 16).
    pub banks: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// 64-bit columns per row. A standard 8 KB rank row has 1024.
    pub columns_per_row: u32,
}

impl Geometry {
    /// Standard DDR4 rank geometry for a density/organization pair.
    pub fn ddr4(density: Density, org: ChipOrg) -> Self {
        // Rank page size is 8 KB regardless of org (chip page × chips/rank);
        // rows per bank scales with density and org width.
        let rows_x8 = density.rows_per_bank_x8();
        let rows = match org {
            ChipOrg::X4 => rows_x8 * 2,
            ChipOrg::X8 => rows_x8,
            ChipOrg::X16 => rows_x8 / 2,
        };
        Geometry {
            banks: 16,
            rows_per_bank: rows,
            columns_per_row: 1024,
        }
    }

    /// A reduced geometry for fast tests: full-width rows, few of them.
    pub fn small_test() -> Self {
        Geometry {
            banks: 2,
            rows_per_bank: 512,
            columns_per_row: 1024,
        }
    }

    /// Bits per row across the rank.
    pub fn bits_per_row(&self) -> u32 {
        self.columns_per_row * 64
    }

    /// Validates a bank index.
    ///
    /// # Errors
    ///
    /// Fails with [`DramError::AddressOutOfRange`].
    pub fn check_bank(&self, bank: u32) -> Result<(), DramError> {
        if bank < self.banks {
            Ok(())
        } else {
            Err(DramError::AddressOutOfRange {
                what: format!("bank {bank} (module has {})", self.banks),
            })
        }
    }

    /// Validates a row index.
    ///
    /// # Errors
    ///
    /// Fails with [`DramError::AddressOutOfRange`].
    pub fn check_row(&self, row: u32) -> Result<(), DramError> {
        if row < self.rows_per_bank {
            Ok(())
        } else {
            Err(DramError::AddressOutOfRange {
                what: format!("row {row} (bank has {})", self.rows_per_bank),
            })
        }
    }

    /// Validates a column index.
    ///
    /// # Errors
    ///
    /// Fails with [`DramError::AddressOutOfRange`].
    pub fn check_column(&self, column: u32) -> Result<(), DramError> {
        if column < self.columns_per_row {
            Ok(())
        } else {
            Err(DramError::AddressOutOfRange {
                what: format!("column {column} (row has {})", self.columns_per_row),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_bits() {
        assert_eq!(Density::D4Gb.bits(), 1u64 << 32);
        assert_eq!(Density::D16Gb.bits(), 1u64 << 34);
    }

    #[test]
    fn org_widths_and_rank_sizes() {
        assert_eq!(ChipOrg::X4.chips_per_rank(), 16);
        assert_eq!(ChipOrg::X8.chips_per_rank(), 8);
        assert_eq!(ChipOrg::X16.chips_per_rank(), 4);
    }

    #[test]
    fn ddr4_geometry_totals_match_density() {
        // 8Gb ×8: 16 banks × 64K rows × 8KB rows = 8 Gb × 8 chips.
        let g = Geometry::ddr4(Density::D8Gb, ChipOrg::X8);
        assert_eq!(g.banks, 16);
        assert_eq!(g.rows_per_bank, 64 * 1024);
        assert_eq!(g.bits_per_row(), 65536);
        let rank_bits = g.banks as u64 * g.rows_per_bank as u64 * g.bits_per_row() as u64;
        assert_eq!(rank_bits, Density::D8Gb.bits() * 8);
    }

    #[test]
    fn x4_has_twice_the_rows() {
        let x8 = Geometry::ddr4(Density::D8Gb, ChipOrg::X8);
        let x4 = Geometry::ddr4(Density::D8Gb, ChipOrg::X4);
        assert_eq!(x4.rows_per_bank, 2 * x8.rows_per_bank);
    }

    #[test]
    fn address_checks() {
        let g = Geometry::small_test();
        assert!(g.check_bank(0).is_ok());
        assert!(g.check_bank(g.banks).is_err());
        assert!(g.check_row(g.rows_per_bank - 1).is_ok());
        assert!(g.check_row(g.rows_per_bank).is_err());
        assert!(g.check_column(0).is_ok());
        assert!(g.check_column(g.columns_per_row).is_err());
    }

    #[test]
    fn display_strings() {
        assert_eq!(Density::D8Gb.to_string(), "8Gb");
        assert_eq!(ChipOrg::X4.to_string(), "x4");
    }
}
