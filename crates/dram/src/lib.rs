//! Behavioral DDR4 DRAM device model for the hammervolt study.
//!
//! The reproduced paper characterizes 272 real DDR4 chips (30 DIMMs, Table 3)
//! under reduced wordline voltage `V_PP`. This crate is the synthetic stand-in
//! for those chips: a cell-accurate behavioral model whose failure physics
//! respond to `V_PP` the way the paper's real devices do.
//!
//! # Model overview
//!
//! Every cell's properties are derived *deterministically* from a hash of
//! `(module seed, bank, row, column, bit)` ([`hash`]), so a module is fully
//! reproducible from its seed and calibration record. The physics
//! ([`physics`]) capture four `V_PP`-dependent mechanisms:
//!
//! 1. **Charge restoration saturation** (Obsv. 10): a restored cell holds
//!    `min(V_DD, ≈0.87·V_PP − 0.51)` volts, full only for `V_PP ≳ 2.0 V`.
//! 2. **RowHammer disturbance** (§2.3): each aggressor activation deposits
//!    `dq ∝ (1 + s·(V_PP − 2.5))` of disturbance into neighbor cells; a cell
//!    flips when accumulated disturbance exceeds its critical charge, which
//!    itself shrinks with the restored level. Lower `V_PP` ⇒ weaker hammering
//!    but also less stored charge — the tension behind the paper's
//!    minority-direction rows (Obsvs. 2 and 5).
//! 3. **Activation latency**: the required `t_RCD` grows as `V_PP` falls;
//!    reads issued faster than a cell's requirement return corrupted bits.
//! 4. **Retention**: heavy-tailed per-cell retention times, Arrhenius
//!    temperature scaling, scaled down by the restored-charge fraction.
//!
//! Module-level behaviour is calibrated against the paper's Table 3
//! ([`registry`]): each of the thirty modules (A0–A9, B0–B9, C0–C9) gets the
//! published `HC_first`/BER at nominal `V_PP` and at its `V_PPmin`, and the
//! per-manufacturer profiles ([`vendor`]) carry the population spreads of
//! Figs. 4 and 6, the retention tail shapes of Fig. 10, and the weak-cell
//! cluster structure of Fig. 11.
//!
//! The device speaks a raw timing-explicit interface ([`module::DramModule`]):
//! `activate`/`read`/`write`/`precharge`/`refresh` with caller-supplied
//! timings, plus `set_vpp` (which fails below the module's `V_PPmin`, as the
//! real modules stop responding). The SoftMC-style test infrastructure in the
//! `hammervolt-softmc` crate drives this interface.
//!
//! # Example
//!
//! ```
//! use hammervolt_dram::registry::{self, ModuleId};
//!
//! let mut module = registry::instantiate(ModuleId::A0, 42).unwrap();
//! module.set_vpp(2.5).unwrap();
//! assert!(module.set_vpp(1.0).is_err()); // below V_PPmin: chip stops responding
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod geometry;
pub mod hash;
pub mod mapping;
pub mod module;
pub mod ondie_ecc;
pub mod physics;
pub mod population;
pub mod registry;
pub mod spd;
pub mod timing;
pub mod trr;
pub mod vendor;
pub mod wide;

pub use error::DramError;
pub use geometry::Geometry;
pub use module::{DramModule, ModuleBlueprint};
pub use registry::{instantiate, ModuleId, ModuleSpec};
pub use vendor::Manufacturer;
