//! In-DRAM Target Row Refresh (TRR) samplers.
//!
//! Modern DDR4 chips carry undocumented RowHammer mitigations that track
//! aggressor rows and refresh their neighbors during REF commands (§4.1,
//! refs. TRRespass/U-TRR). Crucially for the paper's methodology, *every*
//! TRR implementation needs REF commands to act — so the study disables TRR
//! simply by never refreshing. This module implements three vendor-style
//! samplers so that (a) the methodology's interference-isolation step is
//! meaningful and (b) TRR behaviour itself can be studied as an extension.

use crate::hash;
use serde::{Deserialize, Serialize};

/// Vendor-style TRR sampling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrrPolicy {
    /// Record every `period`-th activation (counter-based).
    Periodic {
        /// Sampling period in activations.
        period: u32,
    },
    /// Record an activation with probability `1/chance` (hash-derived).
    Probabilistic {
        /// Inverse sampling probability.
        chance: u32,
    },
    /// Frequency-estimation over a small table (Misra–Gries style): rows
    /// with high estimated counts get refreshed first.
    FrequencyTable {
        /// Number of table entries.
        entries: usize,
    },
}

/// A TRR engine for one bank group: records aggressor candidates on
/// activation and emits refresh targets on REF.
#[derive(Debug, Clone)]
pub struct TrrEngine {
    policy: TrrPolicy,
    seed: u64,
    activation_count: u64,
    /// (row, estimated count) per bank entry table.
    table: Vec<(u32, u64)>,
    /// Most recently sampled row, for the simple policies.
    sampled: Option<u32>,
}

impl TrrEngine {
    /// Creates an engine with the given policy.
    pub fn new(policy: TrrPolicy, seed: u64) -> Self {
        let table_len = match policy {
            TrrPolicy::FrequencyTable { entries } => entries,
            _ => 0,
        };
        TrrEngine {
            policy,
            seed,
            activation_count: 0,
            table: Vec::with_capacity(table_len),
            sampled: None,
        }
    }

    /// The policy in use.
    pub fn policy(&self) -> TrrPolicy {
        self.policy
    }

    /// Records `count` consecutive activations of `row`.
    pub fn record_activations(&mut self, row: u32, count: u64) {
        match self.policy {
            TrrPolicy::Periodic { period } => {
                let before = self.activation_count / period as u64;
                let after = (self.activation_count + count) / period as u64;
                if after > before {
                    self.sampled = Some(row);
                }
            }
            TrrPolicy::Probabilistic { chance } => {
                // Probability that at least one of `count` Bernoulli(1/chance)
                // samples hits, decided deterministically from the stream
                // position.
                let u = hash::uniform01(hash::combine(
                    self.seed,
                    self.activation_count ^ (row as u64) << 32,
                ));
                let p_any = 1.0 - (1.0 - 1.0 / chance as f64).powf(count as f64);
                if u < p_any {
                    self.sampled = Some(row);
                }
            }
            TrrPolicy::FrequencyTable { entries } => {
                if let Some(slot) = self.table.iter_mut().find(|(r, _)| *r == row) {
                    slot.1 += count;
                } else if self.table.len() < entries {
                    self.table.push((row, count));
                } else {
                    // Misra–Gries decrement: shrink every entry by the table
                    // minimum (capped at the incoming count). If the new row
                    // out-hammers the minimum, at least one slot drops to zero
                    // and the new row claims it with the remainder — so a
                    // heavy hitter that starts after the table fills is still
                    // sampled.
                    let min = self.table.iter().map(|&(_, c)| c).min().unwrap_or(0);
                    let dec = min.min(count);
                    for slot in &mut self.table {
                        slot.1 -= dec;
                    }
                    self.table.retain(|(_, c)| *c > 0);
                    let remainder = count - dec;
                    if remainder > 0 && self.table.len() < entries {
                        self.table.push((row, remainder));
                    }
                }
            }
        }
        self.activation_count += count;
    }

    /// On a REF command: returns the aggressor rows whose neighbors should be
    /// refreshed, clearing the tracker state that produced them.
    pub fn take_refresh_targets(&mut self) -> Vec<u32> {
        match self.policy {
            TrrPolicy::Periodic { .. } | TrrPolicy::Probabilistic { .. } => {
                self.sampled.take().into_iter().collect()
            }
            TrrPolicy::FrequencyTable { .. } => {
                let mut rows: Vec<(u32, u64)> = self.table.drain(..).collect();
                rows.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
                rows.into_iter().take(2).map(|(r, _)| r).collect()
            }
        }
    }

    /// Total activations observed.
    pub fn activation_count(&self) -> u64 {
        self.activation_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_samples_after_period() {
        let mut e = TrrEngine::new(TrrPolicy::Periodic { period: 100 }, 1);
        e.record_activations(7, 50);
        assert!(e.take_refresh_targets().is_empty());
        e.record_activations(7, 60); // crosses 100
        assert_eq!(e.take_refresh_targets(), vec![7]);
        // taking clears the sample
        assert!(e.take_refresh_targets().is_empty());
    }

    #[test]
    fn periodic_bulk_crossing_counts_once() {
        let mut e = TrrEngine::new(TrrPolicy::Periodic { period: 10 }, 1);
        e.record_activations(3, 1_000);
        assert_eq!(e.take_refresh_targets(), vec![3]);
    }

    #[test]
    fn probabilistic_catches_heavy_hammering() {
        let mut e = TrrEngine::new(TrrPolicy::Probabilistic { chance: 1000 }, 42);
        // 100K activations: catch probability 1 − (1−1e−3)^1e5 ≈ 1.
        e.record_activations(9, 100_000);
        assert_eq!(e.take_refresh_targets(), vec![9]);
    }

    #[test]
    fn probabilistic_rarely_catches_light_traffic() {
        // A single activation with chance 1000 is almost never sampled; test
        // determinism across many seeds rather than exact behaviour.
        let caught = (0..100)
            .filter(|&s| {
                let mut e = TrrEngine::new(TrrPolicy::Probabilistic { chance: 1000 }, s);
                e.record_activations(1, 1);
                !e.take_refresh_targets().is_empty()
            })
            .count();
        assert!(caught < 5, "caught {caught}/100");
    }

    #[test]
    fn frequency_table_tracks_heavy_hitters() {
        let mut e = TrrEngine::new(TrrPolicy::FrequencyTable { entries: 4 }, 1);
        e.record_activations(10, 500);
        e.record_activations(20, 10_000);
        e.record_activations(30, 9_000);
        e.record_activations(40, 100);
        let targets = e.take_refresh_targets();
        assert_eq!(targets, vec![20, 30]);
        // table drained
        assert!(e.take_refresh_targets().is_empty());
    }

    #[test]
    fn frequency_table_evicts_under_pressure() {
        let mut e = TrrEngine::new(TrrPolicy::FrequencyTable { entries: 2 }, 1);
        e.record_activations(1, 5);
        e.record_activations(2, 5);
        e.record_activations(3, 100); // decrements 1 and 2 away, claims a slot
        e.record_activations(3, 100);
        let targets = e.take_refresh_targets();
        assert!(targets.len() <= 2);
        assert!(
            targets.contains(&3),
            "the evicting heavy hitter must survive"
        );
    }

    #[test]
    fn frequency_table_samples_late_heavy_hitter() {
        // Regression: the old eviction path decremented the table by the
        // incoming count but never inserted the incoming row, so an attacker
        // rotating onto a fresh aggressor after the table filled was
        // invisible no matter how hard it hammered.
        let mut e = TrrEngine::new(TrrPolicy::FrequencyTable { entries: 2 }, 1);
        e.record_activations(1, 50);
        e.record_activations(2, 50);
        // Row 3 arrives late and hammers 20x harder than either resident.
        e.record_activations(3, 1_000);
        let targets = e.take_refresh_targets();
        assert!(
            targets.contains(&3),
            "late-arriving heavy hitter must be sampled, got {targets:?}"
        );
    }

    #[test]
    fn frequency_table_light_newcomer_does_not_displace_heavies() {
        // The flip side of Misra–Gries: a row weaker than the current table
        // minimum only decrements the residents and is itself discarded.
        let mut e = TrrEngine::new(TrrPolicy::FrequencyTable { entries: 2 }, 1);
        e.record_activations(1, 10_000);
        e.record_activations(2, 9_000);
        e.record_activations(3, 5);
        let targets = e.take_refresh_targets();
        assert_eq!(targets, vec![1, 2]);
    }

    #[test]
    fn activation_count_accumulates() {
        let mut e = TrrEngine::new(TrrPolicy::Periodic { period: 7 }, 1);
        e.record_activations(1, 3);
        e.record_activations(2, 4);
        assert_eq!(e.activation_count(), 7);
    }

    #[test]
    fn no_refresh_commands_means_no_mitigations() {
        // The paper's isolation argument: TRR state may accumulate, but
        // without take_refresh_targets (i.e. without REF) nothing is ever
        // refreshed — there is no other output channel.
        let mut e = TrrEngine::new(TrrPolicy::Periodic { period: 2 }, 1);
        e.record_activations(5, 1_000_000);
        // state exists...
        assert_eq!(e.activation_count(), 1_000_000);
        // ...but is only observable through the REF path.
        assert_eq!(e.take_refresh_targets(), vec![5]);
    }
}
