//! On-die ECC modeling.
//!
//! §4.1: "we test DRAM modules without error-correction code (ECC) support to
//! ensure neither on-die ECC nor rank-level ECC can affect our observations
//! by correcting V_PP-reduction-induced bit flips." Modern high-density dies
//! (and all DDR5) carry an internal SECDED-style code that silently corrects
//! single-bit errors per codeword on every read.
//!
//! This module provides that masking layer so the isolation requirement is a
//! *choice* in the model rather than an accident: the study instantiates
//! modules with [`OnDieEcc::None`], and the extension tests show how much of
//! the RowHammer/retention signal an on-die code would have hidden — exactly
//! the observability problem prior work (BEER, HARP) wrestles with.

use serde::{Deserialize, Serialize};

/// On-die ECC configuration of a die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OnDieEcc {
    /// No internal code — every array bit is visible at the interface.
    /// All Table 3 modules are modeled this way (§4.1).
    #[default]
    None,
    /// A single-error-correcting code over each 64-bit interface word
    /// (modeling a (72,64) internal codeword, with check bits held in
    /// hidden array columns that share the data bits' failure physics).
    Secded64,
}

/// Result of pushing a raw array word through the on-die ECC read path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccReadResult {
    /// The word presented at the DRAM interface.
    pub data: u64,
    /// Bit flips the code silently corrected (0 or 1 for SECDED).
    pub corrected_bits: u32,
    /// Whether the codeword held a detectable-but-uncorrectable error
    /// (≥ 2 flips). Real dies still return (mis)corrected data; the flag is
    /// for model introspection.
    pub uncorrectable: bool,
}

impl OnDieEcc {
    /// Applies the read path: given the word as stored in the array and the
    /// word as originally written (the internal code was computed at write
    /// time), returns what the interface delivers.
    ///
    /// SECDED masks exactly one flipped bit per word; with two or more flips
    /// the word is passed through uncorrected and flagged. (A real decoder
    /// may miscorrect ≥3-bit patterns; passing through is the conservative
    /// model for visibility studies — the *count* of visible flips is what
    /// the masking analysis measures.)
    pub fn read(&self, stored: u64, written: u64) -> EccReadResult {
        match self {
            OnDieEcc::None => EccReadResult {
                data: stored,
                corrected_bits: 0,
                uncorrectable: false,
            },
            OnDieEcc::Secded64 => {
                let flips = (stored ^ written).count_ones();
                match flips {
                    0 => EccReadResult {
                        data: stored,
                        corrected_bits: 0,
                        uncorrectable: false,
                    },
                    1 => EccReadResult {
                        data: written,
                        corrected_bits: 1,
                        uncorrectable: false,
                    },
                    _ => EccReadResult {
                        data: stored,
                        corrected_bits: 0,
                        uncorrectable: true,
                    },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_transparent() {
        let r = OnDieEcc::None.read(0xDEAD, 0xBEEF);
        assert_eq!(r.data, 0xDEAD);
        assert_eq!(r.corrected_bits, 0);
        assert!(!r.uncorrectable);
    }

    #[test]
    fn secded_masks_single_flips() {
        let written = 0xAAAA_AAAA_AAAA_AAAA;
        let stored = written ^ (1 << 17);
        let r = OnDieEcc::Secded64.read(stored, written);
        assert_eq!(r.data, written);
        assert_eq!(r.corrected_bits, 1);
        assert!(!r.uncorrectable);
    }

    #[test]
    fn secded_passes_multibit_through() {
        let written = 0u64;
        let stored = 0b1010;
        let r = OnDieEcc::Secded64.read(stored, written);
        assert_eq!(r.data, stored);
        assert!(r.uncorrectable);
    }

    #[test]
    fn clean_words_untouched() {
        let r = OnDieEcc::Secded64.read(42, 42);
        assert_eq!(r.data, 42);
        assert_eq!(r.corrected_bits, 0);
    }
}
