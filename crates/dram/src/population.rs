//! Generative module populations: synthesize A/B/C-family modules at scale.
//!
//! The registry enumerates the paper's thirty Table-3 modules; this module
//! turns those thirty calibration records into per-manufacturer parameter
//! *distributions* ([`FamilyDistribution`]) and generates fresh
//! [`ModuleSpec`]s from them. Generation is a pure function of
//! `(population seed, module index)` — no state, no enumeration — so a
//! population of millions of modules costs nothing until an index is
//! actually instantiated, mirroring how the device model itself derives
//! per-cell parameters lazily from `(row, cell, salt)`.

use crate::hash;
use crate::registry::{self, ModuleId, ModuleSpec};
use crate::vendor::{Manufacturer, WeakCluster};
use serde::{Deserialize, Serialize};

// Distinct salt constants so every drawn parameter consumes an independent
// hash stream.
const SALT_MODULE: u64 = 0x9060_0000_0000_0001;
const SALT_FAMILY: u64 = 0x9060_0000_0000_0002;
const SALT_SEED: u64 = 0x9060_0000_0000_0003;
const SALT_HC_NOM: u64 = 0x9060_0000_0000_0010;
const SALT_BER_NOM: u64 = 0x9060_0000_0000_0011;
const SALT_HC_MULT: u64 = 0x9060_0000_0000_0012;
const SALT_BER_RATIO: u64 = 0x9060_0000_0000_0013;
const SALT_VPP_MIN: u64 = 0x9060_0000_0000_0014;
const SALT_TRCD_BASE: u64 = 0x9060_0000_0000_0015;
const SALT_TRCD_MIN: u64 = 0x9060_0000_0000_0016;
const SALT_WEAK64: u64 = 0x9060_0000_0000_0017;

/// Inclusive parameter range observed across one family's registry specs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParamRange {
    /// Smallest observed value.
    pub lo: f64,
    /// Largest observed value.
    pub hi: f64,
}

impl ParamRange {
    fn fit(values: impl Iterator<Item = f64>) -> ParamRange {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        ParamRange { lo, hi }
    }

    /// Uniform draw in `[lo, hi)` (degenerate ranges return `lo`).
    pub fn sample(&self, seed: u64) -> f64 {
        hash::uniform(seed, self.lo, self.hi)
    }

    /// Log-uniform draw — appropriate for scale parameters like `HC_first`
    /// and BER whose registry values span orders of magnitude.
    pub fn sample_log(&self, seed: u64) -> f64 {
        hash::uniform(seed, self.lo.ln(), self.hi.ln()).exp()
    }

    /// Whether `v` lies within the fitted range (closed interval).
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }
}

/// Per-manufacturer generation model fitted from the ten registry specs of
/// that family.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyDistribution {
    /// The family this distribution describes.
    pub mfr: Manufacturer,
    /// `HC_first` at nominal `V_PP` (log-uniform; activations).
    pub hc_first_nominal: ParamRange,
    /// BER at nominal `V_PP` (log-uniform).
    pub ber_nominal: ParamRange,
    /// Module-level `HC_first` multiplier at `V_PPmin`.
    pub hc_multiplier: ParamRange,
    /// Module-level BER ratio at `V_PPmin`.
    pub ber_ratio: ParamRange,
    /// `V_PPmin` (V), quantized to the 0.1 V grid the paper sweeps.
    pub vpp_min: ParamRange,
    /// `t_RCD` requirement at nominal `V_PP` (ns).
    pub trcd_base_ns: ParamRange,
    /// `t_RCD` requirement at `V_PPmin` (ns).
    pub trcd_at_vppmin_ns: ParamRange,
    /// Fraction of the family's modules that flip at the 64 ms window at
    /// `V_PPmin` (Obsv. 13: 0/10 for A, 3/10 for B, 4/10 for C).
    pub weak64_fraction: f64,
    /// The family's Fig. 11a weak-cluster structure (empty for Mfr. A).
    pub cluster64: Vec<WeakCluster>,
    /// Registry archetype supplying the non-generated metadata (geometry,
    /// organization, model string).
    archetype: ModuleId,
}

impl FamilyDistribution {
    /// Fits the distribution from the family's ten registry specs.
    pub fn fit(mfr: Manufacturer) -> FamilyDistribution {
        let specs: Vec<ModuleSpec> = ModuleId::ALL
            .iter()
            .filter(|id| id.manufacturer() == mfr)
            .map(|&id| registry::spec(id))
            .collect();
        let range = |f: &dyn Fn(&ModuleSpec) -> f64| ParamRange::fit(specs.iter().map(f));
        let weak = specs.iter().filter(|s| s.flips_at_64ms()).count();
        let cluster64 = specs
            .iter()
            .find(|s| s.flips_at_64ms())
            .map(|s| s.cluster64.clone())
            .unwrap_or_default();
        let archetype = match mfr {
            Manufacturer::A => ModuleId::A0,
            Manufacturer::B => ModuleId::B0,
            Manufacturer::C => ModuleId::C0,
        };
        FamilyDistribution {
            mfr,
            hc_first_nominal: range(&|s| s.hc_first_nominal),
            ber_nominal: range(&|s| s.ber_nominal),
            hc_multiplier: range(&|s| s.hc_multiplier_target()),
            ber_ratio: range(&|s| s.ber_ratio_at_vppmin()),
            vpp_min: range(&|s| s.vpp_min),
            trcd_base_ns: range(&|s| s.trcd.base_ns),
            trcd_at_vppmin_ns: range(&|s| {
                s.trcd.base_ns + s.trcd.slope_ns * (2.5 - s.vpp_min).powi(2)
            }),
            weak64_fraction: weak as f64 / specs.len() as f64,
            cluster64,
            archetype,
        }
    }

    /// The family's registry archetype: supplies module metadata that the
    /// distribution does not generate.
    pub fn archetype(&self) -> ModuleId {
        self.archetype
    }

    /// Generates a synthetic spec from a per-module base seed. Pure: the
    /// same `base` always yields the same spec.
    pub fn generate(&self, base: u64) -> ModuleSpec {
        let draw = |salt: u64| hash::combine(base, salt);
        let hc_nominal = self.hc_first_nominal.sample_log(draw(SALT_HC_NOM));
        let ber_nominal = self.ber_nominal.sample_log(draw(SALT_BER_NOM));
        let hc_multiplier = self.hc_multiplier.sample(draw(SALT_HC_MULT));
        let ber_ratio = self.ber_ratio.sample(draw(SALT_BER_RATIO));
        // Snap to the paper's 0.1 V sweep grid, then clamp back into the
        // fitted range (rounding can step just outside it).
        let vpp_min = ((self.vpp_min.sample(draw(SALT_VPP_MIN)) * 10.0).round() / 10.0)
            .clamp(self.vpp_min.lo, self.vpp_min.hi);
        let trcd_base = self.trcd_base_ns.sample(draw(SALT_TRCD_BASE));
        // t_RCD never improves under reduced wordline voltage (§6.1).
        let trcd_at_min = self
            .trcd_at_vppmin_ns
            .sample(draw(SALT_TRCD_MIN))
            .max(trcd_base);
        let weak = hash::uniform01(draw(SALT_WEAK64)) < self.weak64_fraction;
        let dv = 2.5 - vpp_min;
        let mut spec = registry::spec(self.archetype);
        spec.dimm_model = match self.mfr {
            Manufacturer::A => "HV-POP-A",
            Manufacturer::B => "HV-POP-B",
            Manufacturer::C => "HV-POP-C",
        };
        spec.die_revision = None;
        spec.mfr_date = None;
        spec.hc_first_nominal = hc_nominal;
        spec.ber_nominal = ber_nominal;
        spec.vpp_min = vpp_min;
        spec.hc_first_at_vppmin = hc_nominal * hc_multiplier;
        spec.ber_at_vppmin = ber_nominal * ber_ratio;
        // The recommended operating point coincides with V_PPmin, as it does
        // for most Table-3 rows; the device model calibrates only through
        // the nominal and V_PPmin endpoints.
        spec.vpp_rec = vpp_min;
        spec.hc_first_at_rec = spec.hc_first_at_vppmin;
        spec.ber_at_rec = spec.ber_at_vppmin;
        spec.trcd.base_ns = trcd_base;
        spec.trcd.slope_ns = if dv > 0.0 {
            (trcd_at_min - trcd_base) / (dv * dv)
        } else {
            0.0
        };
        spec.trcd.curve = 2.0;
        spec.cluster64 = if weak {
            self.cluster64.clone()
        } else {
            Vec::new()
        };
        spec
    }
}

/// Relative weights of the three families in a generated population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FamilyMix {
    /// Weight of Mfr. A modules.
    pub a: u32,
    /// Weight of Mfr. B modules.
    pub b: u32,
    /// Weight of Mfr. C modules.
    pub c: u32,
}

impl FamilyMix {
    /// Equal thirds, like the paper's 10/10/10 test pool.
    pub fn uniform() -> FamilyMix {
        FamilyMix { a: 1, b: 1, c: 1 }
    }

    fn total(&self) -> u64 {
        self.a as u64 + self.b as u64 + self.c as u64
    }

    fn pick(&self, u: f64) -> Manufacturer {
        let total = self.total() as f64;
        let x = u * total;
        if x < self.a as f64 {
            Manufacturer::A
        } else if x < (self.a + self.b) as f64 {
            Manufacturer::B
        } else {
            Manufacturer::C
        }
    }
}

impl Default for FamilyMix {
    fn default() -> Self {
        FamilyMix::uniform()
    }
}

/// A generated population: `size` modules drawn from the family mix, fully
/// determined by `seed`. The spec is the *identity* of the population — two
/// equal specs denote byte-identical fleets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PopulationSpec {
    /// Relative family weights.
    pub family_mix: FamilyMix,
    /// Number of modules in the population.
    pub size: u64,
    /// Root seed; every module derives from `(seed, index)`.
    pub seed: u64,
}

impl PopulationSpec {
    /// Builds the sampler (fits the three family distributions once).
    pub fn sampler(&self) -> PopulationSampler {
        PopulationSampler {
            spec: *self,
            dists: Manufacturer::ALL.map(FamilyDistribution::fit),
        }
    }
}

/// Stateless generator over a [`PopulationSpec`]: every accessor is a pure
/// function of `(spec, index)`.
#[derive(Debug, Clone)]
pub struct PopulationSampler {
    spec: PopulationSpec,
    dists: [FamilyDistribution; 3],
}

impl PopulationSampler {
    /// The spec this sampler generates from.
    pub fn spec(&self) -> &PopulationSpec {
        &self.spec
    }

    /// The fitted distribution for one family.
    pub fn distribution(&self, mfr: Manufacturer) -> &FamilyDistribution {
        &self.dists[Manufacturer::ALL
            .iter()
            .position(|&m| m == mfr)
            .expect("ALL")]
    }

    fn base(&self, index: u64) -> u64 {
        hash::combine(self.spec.seed, SALT_MODULE ^ index)
    }

    /// Which family module `index` belongs to.
    pub fn family_of(&self, index: u64) -> Manufacturer {
        let u = hash::uniform01(hash::combine(self.base(index), SALT_FAMILY));
        self.spec.family_mix.pick(u)
    }

    /// The synthetic spec of module `index`.
    pub fn module_spec(&self, index: u64) -> ModuleSpec {
        self.distribution(self.family_of(index))
            .generate(self.base(index))
    }

    /// The device seed of module `index` (selects the specimen: all
    /// cell-level randomness derives from it).
    pub fn module_seed(&self, index: u64) -> u64 {
        hash::combine(self.base(index), SALT_SEED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;
    use crate::module::DramModule;

    fn spec3() -> PopulationSpec {
        PopulationSpec {
            family_mix: FamilyMix::uniform(),
            size: 1000,
            seed: 42,
        }
    }

    #[test]
    fn generation_is_pure_and_deterministic() {
        let s1 = spec3().sampler();
        let s2 = spec3().sampler();
        for index in [0u64, 1, 17, 999, 1_000_000_000] {
            assert_eq!(
                s1.module_spec(index),
                s2.module_spec(index),
                "index {index}"
            );
            assert_eq!(s1.module_seed(index), s2.module_seed(index));
            assert_eq!(s1.family_of(index), s2.family_of(index));
        }
        // Order independence: reading index 999 first changes nothing.
        let a = s1.module_spec(999);
        let _ = s1.module_spec(0);
        assert_eq!(a, s1.module_spec(999));
    }

    #[test]
    fn different_seeds_differ() {
        let s1 = spec3().sampler();
        let mut other = spec3();
        other.seed = 43;
        let s2 = other.sampler();
        let differs = (0..20u64).any(|i| s1.module_spec(i) != s2.module_spec(i));
        assert!(differs);
    }

    #[test]
    fn generated_parameters_stay_in_fitted_ranges() {
        let s = spec3().sampler();
        for index in 0..500u64 {
            let spec = s.module_spec(index);
            let d = s.distribution(spec.mfr);
            assert!(
                d.hc_first_nominal.contains(spec.hc_first_nominal),
                "{index}"
            );
            assert!(d.ber_nominal.contains(spec.ber_nominal), "{index}");
            assert!(
                d.hc_multiplier.contains(spec.hc_multiplier_target()),
                "{index}"
            );
            assert!(d.ber_ratio.contains(spec.ber_ratio_at_vppmin()), "{index}");
            assert!(d.vpp_min.contains(spec.vpp_min), "{index}");
            // On the 0.1 V grid.
            let snapped = (spec.vpp_min * 10.0).round() / 10.0;
            assert!((spec.vpp_min - snapped).abs() < 1e-12, "{index}");
            // t_RCD response never improves under reduced voltage.
            assert!(spec.trcd.slope_ns >= 0.0, "{index}");
        }
    }

    #[test]
    fn family_mix_weights_are_respected() {
        let spec = PopulationSpec {
            family_mix: FamilyMix { a: 1, b: 1, c: 2 },
            size: 4000,
            seed: 7,
        };
        let s = spec.sampler();
        let c = (0..4000u64)
            .filter(|&i| s.family_of(i) == Manufacturer::C)
            .count();
        let frac = c as f64 / 4000.0;
        assert!((frac - 0.5).abs() < 0.05, "C fraction {frac}");
    }

    #[test]
    fn weak_cluster_incidence_matches_family() {
        let s = spec3().sampler();
        // Mfr. A never flips at 64 ms (Obsv. 13); B and C sometimes do.
        let mut weak_b = 0;
        let mut total_b = 0;
        for index in 0..2000u64 {
            let spec = s.module_spec(index);
            match spec.mfr {
                Manufacturer::A => assert!(spec.cluster64.is_empty()),
                Manufacturer::B => {
                    total_b += 1;
                    if spec.flips_at_64ms() {
                        weak_b += 1;
                        assert_eq!(spec.cluster64.len(), 2);
                    }
                }
                Manufacturer::C => {}
            }
        }
        let frac = weak_b as f64 / total_b as f64;
        assert!((frac - 0.3).abs() < 0.1, "B weak fraction {frac}");
    }

    #[test]
    fn generated_specs_instantiate() {
        let s = spec3().sampler();
        for index in 0..6u64 {
            let spec = s.module_spec(index);
            let m = DramModule::with_geometry(spec, s.module_seed(index), Geometry::small_test());
            assert!(m.is_ok(), "index {index}: {:?}", m.err());
        }
    }

    #[test]
    fn fitted_ranges_match_registry_extremes() {
        let a = FamilyDistribution::fit(Manufacturer::A);
        // §7: V_PPmin spans 1.4 V (A0) to 2.4 V (A5), both Mfr. A.
        assert_eq!(a.vpp_min.lo, 1.4);
        assert_eq!(a.vpp_min.hi, 2.4);
        assert_eq!(a.weak64_fraction, 0.0);
        let b = FamilyDistribution::fit(Manufacturer::B);
        assert_eq!(b.weak64_fraction, 0.3);
        assert_eq!(b.cluster64.len(), 2);
        let c = FamilyDistribution::fit(Manufacturer::C);
        assert_eq!(c.weak64_fraction, 0.4);
        assert_eq!(c.cluster64.len(), 1);
    }
}
