//! DRAM-internal address mapping (logical ↔ physical row translation).
//!
//! Manufacturers scramble the row address space and remap faulty rows to
//! spares (§4.2 of the paper, refs. [37, 87]); a double-sided attack must
//! target the rows that are *physically* adjacent to the victim, which the
//! study reverse engineers per module. This module implements three
//! vendor-style schemes plus a spare-row remap layer, all bijective, so the
//! methodology crate can re-derive adjacency the way the paper does.

use crate::hash;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Base scrambling scheme, before spare-row remapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheme {
    /// Identity mapping (logical = physical).
    Direct,
    /// Adjacent-pair swap in the odd half-groups: rows `8k+4 .. 8k+7` have
    /// their low pair bit inverted. Models the "mirrored" layouts reported
    /// for some vendors.
    PairMirror,
    /// Low-three-bit permutation: physical low bits are `(b0 b1 b2) →
    /// (b2 b0 b1)` within each block of 8. Models hierarchically-organized
    /// internal buffers.
    BlockShuffle,
}

impl Scheme {
    /// All implemented schemes — the candidate set a reverse-engineering
    /// procedure scores against.
    pub const ALL: [Scheme; 3] = [Scheme::Direct, Scheme::PairMirror, Scheme::BlockShuffle];
}

impl Scheme {
    /// Translates a logical row through the bare scheme (no repair overlay).
    #[inline]
    pub fn logical_to_physical(&self, logical: u32) -> u32 {
        match self {
            Scheme::Direct => logical,
            Scheme::PairMirror => {
                if (logical >> 2) & 1 == 1 {
                    logical ^ 1
                } else {
                    logical
                }
            }
            Scheme::BlockShuffle => {
                let low = logical & 0x7;
                let rotated = ((low << 1) | (low >> 2)) & 0x7;
                (logical & !0x7) | rotated
            }
        }
    }

    /// Inverse of [`Scheme::logical_to_physical`].
    #[inline]
    pub fn physical_to_logical(&self, physical: u32) -> u32 {
        match self {
            Scheme::Direct => physical,
            // PairMirror is an involution.
            Scheme::PairMirror => self.logical_to_physical(physical),
            Scheme::BlockShuffle => {
                let low = physical & 0x7;
                let rotated = ((low >> 1) | (low << 2)) & 0x7;
                (physical & !0x7) | rotated
            }
        }
    }
}

/// Complete address mapping for one bank: a scrambling scheme plus a sparse
/// spare-row remap (post-manufacturing repair).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddressMapping {
    scheme: Scheme,
    rows: u32,
    /// logical → physical overrides for repaired rows.
    remap: HashMap<u32, u32>,
    /// inverse of `remap`.
    remap_inv: HashMap<u32, u32>,
}

impl AddressMapping {
    /// Creates a mapping over `rows` rows with no repairs.
    pub fn new(scheme: Scheme, rows: u32) -> Self {
        AddressMapping {
            scheme,
            rows,
            remap: HashMap::new(),
            remap_inv: HashMap::new(),
        }
    }

    /// Creates a mapping with `repairs` pseudo-random repaired rows derived
    /// from `seed`: each repair swaps a victim row's physical location with a
    /// row in the top spare region (last 64 physical rows).
    pub fn with_repairs(scheme: Scheme, rows: u32, repairs: u32, seed: u64) -> Self {
        let mut m = AddressMapping::new(scheme, rows);
        if rows < 128 {
            return m;
        }
        let spare_base = rows - 64;
        for i in 0..repairs.min(64) {
            let victim_logical =
                (hash::splitmix64(hash::combine(seed, i as u64)) % (spare_base as u64 - 1)) as u32;
            let spare_physical = spare_base + i;
            let victim_physical = m.scheme.logical_to_physical(victim_logical);
            // swap: victim_logical now lives at spare_physical; whatever
            // logical row mapped to spare_physical moves to victim_physical.
            let displaced_logical = m.scheme.physical_to_logical(spare_physical);
            // A duplicate victim (hash collision) would corrupt the swap
            // book-keeping; skip it — the repair count is best-effort.
            if m.remap.contains_key(&victim_logical) || m.remap.contains_key(&displaced_logical) {
                continue;
            }
            m.remap.insert(victim_logical, spare_physical);
            m.remap_inv.insert(spare_physical, victim_logical);
            m.remap.insert(displaced_logical, victim_physical);
            m.remap_inv.insert(victim_physical, displaced_logical);
        }
        m
    }

    /// Number of rows covered.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The base scrambling scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Translates a logical row (as addressed over the DRAM interface) to its
    /// physical location.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= rows`.
    #[inline]
    pub fn logical_to_physical(&self, logical: u32) -> u32 {
        assert!(logical < self.rows, "logical row {logical} out of range");
        if let Some(&p) = self.remap.get(&logical) {
            return p;
        }
        self.scheme.logical_to_physical(logical)
    }

    /// Translates a physical row location back to the logical address.
    ///
    /// # Panics
    ///
    /// Panics if `physical >= rows`.
    #[inline]
    pub fn physical_to_logical(&self, physical: u32) -> u32 {
        assert!(physical < self.rows, "physical row {physical} out of range");
        if let Some(&l) = self.remap_inv.get(&physical) {
            return l;
        }
        self.scheme.physical_to_logical(physical)
    }

    /// The logical addresses of the rows physically adjacent to `logical`
    /// (below, above). `None` at the edges of the array.
    ///
    /// These are the aggressor rows of a double-sided attack on `logical`.
    pub fn physical_neighbors(&self, logical: u32) -> (Option<u32>, Option<u32>) {
        let phys = self.logical_to_physical(logical);
        let below = if phys > 0 {
            Some(self.physical_to_logical(phys - 1))
        } else {
            None
        };
        let above = if phys + 1 < self.rows {
            Some(self.physical_to_logical(phys + 1))
        } else {
            None
        };
        (below, above)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bijective(m: &AddressMapping) {
        let mut seen = std::collections::HashSet::new();
        for logical in 0..m.rows() {
            let p = m.logical_to_physical(logical);
            assert!(p < m.rows(), "physical {p} out of range");
            assert!(seen.insert(p), "physical {p} mapped twice");
            assert_eq!(
                m.physical_to_logical(p),
                logical,
                "round trip failed for logical {logical}"
            );
        }
    }

    #[test]
    fn direct_is_identity() {
        let m = AddressMapping::new(Scheme::Direct, 256);
        for r in 0..256 {
            assert_eq!(m.logical_to_physical(r), r);
        }
        check_bijective(&m);
    }

    #[test]
    fn pair_mirror_is_bijective_involution() {
        let m = AddressMapping::new(Scheme::PairMirror, 256);
        check_bijective(&m);
        // it actually changes something
        assert_ne!(m.logical_to_physical(4), 4);
        assert_eq!(m.logical_to_physical(4), 5);
        assert_eq!(m.logical_to_physical(5), 4);
        // and leaves even half-groups alone
        assert_eq!(m.logical_to_physical(0), 0);
        assert_eq!(m.logical_to_physical(3), 3);
    }

    #[test]
    fn block_shuffle_is_bijective() {
        let m = AddressMapping::new(Scheme::BlockShuffle, 256);
        check_bijective(&m);
        assert_ne!(m.logical_to_physical(1), 1);
    }

    #[test]
    fn repairs_remain_bijective() {
        for scheme in [Scheme::Direct, Scheme::PairMirror, Scheme::BlockShuffle] {
            let m = AddressMapping::with_repairs(scheme, 512, 8, 99);
            check_bijective(&m);
            assert!(!m.remap.is_empty());
        }
    }

    #[test]
    fn repaired_row_lives_in_spare_region() {
        let m = AddressMapping::with_repairs(Scheme::Direct, 512, 4, 7);
        let spare_base = 512 - 64;
        let mut found = 0;
        for logical in 0..(512 - 64) {
            if m.logical_to_physical(logical) >= spare_base {
                found += 1;
            }
        }
        assert_eq!(found, 4);
    }

    #[test]
    fn small_arrays_skip_repairs() {
        let m = AddressMapping::with_repairs(Scheme::Direct, 64, 8, 7);
        check_bijective(&m);
        assert!(m.remap.is_empty());
    }

    #[test]
    fn neighbors_are_physically_adjacent() {
        let m = AddressMapping::new(Scheme::PairMirror, 256);
        for logical in 0..256u32 {
            let phys = m.logical_to_physical(logical);
            let (below, above) = m.physical_neighbors(logical);
            if let Some(b) = below {
                assert_eq!(m.logical_to_physical(b), phys - 1);
            } else {
                assert_eq!(phys, 0);
            }
            if let Some(a) = above {
                assert_eq!(m.logical_to_physical(a), phys + 1);
            } else {
                assert_eq!(phys, 255);
            }
        }
    }

    #[test]
    fn neighbors_differ_from_logical_neighbors_under_scrambling() {
        // The whole point of reverse engineering: logical ±1 is NOT always
        // physical ±1 under a scrambled scheme.
        let m = AddressMapping::new(Scheme::BlockShuffle, 256);
        let mut mismatches = 0;
        for logical in 1..255u32 {
            let (below, above) = m.physical_neighbors(logical);
            if below != Some(logical - 1) || above != Some(logical + 1) {
                mismatches += 1;
            }
        }
        assert!(mismatches > 100, "only {mismatches} scrambled neighbors");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_logical_panics() {
        AddressMapping::new(Scheme::Direct, 16).logical_to_physical(16);
    }
}
