//! Wide-word application of staged flip bitmaps.
//!
//! The materialization path stages flips in a dense one-`u64`-per-word
//! scratch and lands them with XOR (see `module.rs`). When many words carry
//! staged bits, walking the sparse `touched` list defeats the prefetcher
//! and does a data-dependent scatter; a straight-line pass over the whole
//! row XORs four words per loop iteration, which LLVM auto-vectorizes to
//! 128/256-bit ops on stable Rust (no `std::simd` required). XOR with a
//! zero mask is the identity, so the dense pass lands exactly the bits the
//! sparse pass would — callers pick whichever walk is cheaper.

/// XORs `flips` into `data` element-wise and zeroes `flips` on the way out,
/// in one allocation-free pass over both slices.
///
/// Processed in 4-wide chunks so the loop body is a fixed-width bundle of
/// independent XOR/store pairs — the form LLVM reliably turns into vector
/// instructions — with a scalar tail for the remainder.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_apply_clear(data: &mut [u64], flips: &mut [u64]) {
    assert_eq!(data.len(), flips.len(), "row and scratch must match");
    let mut d = data.chunks_exact_mut(4);
    let mut f = flips.chunks_exact_mut(4);
    for (dw, fw) in (&mut d).zip(&mut f) {
        dw[0] ^= fw[0];
        dw[1] ^= fw[1];
        dw[2] ^= fw[2];
        dw[3] ^= fw[3];
        fw[0] = 0;
        fw[1] = 0;
        fw[2] = 0;
        fw[3] = 0;
    }
    for (dw, fw) in d.into_remainder().iter_mut().zip(f.into_remainder()) {
        *dw ^= *fw;
        *fw = 0;
    }
}

/// The sparse counterpart: XORs and clears only the listed words.
///
/// # Panics
///
/// Panics (in debug builds, via indexing) if a listed word is out of range.
pub fn xor_apply_clear_sparse(data: &mut [u64], flips: &mut [u64], touched: &[u32]) {
    for &w in touched {
        data[w as usize] ^= flips[w as usize];
        flips[w as usize] = 0;
    }
}

/// Whether the dense whole-row pass is the better walk for `touched_words`
/// staged words out of `row_words` total. The dense pass touches every word
/// once with no indirection; the sparse pass touches only staged words but
/// through a scatter. The crossover is conservative: dense wins once a
/// quarter of the row carries staged bits.
pub fn dense_apply_pays(touched_words: usize, row_words: usize) -> bool {
    touched_words * 4 >= row_words
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> (Vec<u64>, Vec<u64>) {
        let data: Vec<u64> = (0..n)
            .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let flips: Vec<u64> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    (i as u64) << 17 | 0b101
                } else {
                    0
                }
            })
            .collect();
        (data, flips)
    }

    #[test]
    fn dense_equals_sparse() {
        for n in [0, 1, 3, 4, 7, 8, 64, 129] {
            let (base, staged) = sample(n);
            let touched: Vec<u32> = staged
                .iter()
                .enumerate()
                .filter(|(_, &f)| f != 0)
                .map(|(i, _)| i as u32)
                .collect();

            let (mut d1, mut f1) = (base.clone(), staged.clone());
            xor_apply_clear(&mut d1, &mut f1);
            let (mut d2, mut f2) = (base.clone(), staged.clone());
            xor_apply_clear_sparse(&mut d2, &mut f2, &touched);

            assert_eq!(d1, d2, "n = {n}");
            assert!(f1.iter().all(|&f| f == 0));
            assert!(f2.iter().all(|&f| f == 0));
        }
    }

    #[test]
    fn dense_pass_clears_untouched_scratch_too() {
        let mut data = vec![1u64, 2, 3, 4, 5];
        let mut flips = vec![0u64, 0xFF, 0, 0, 0];
        xor_apply_clear(&mut data, &mut flips);
        assert_eq!(data, vec![1, 2 ^ 0xFF, 3, 4, 5]);
        assert!(flips.iter().all(|&f| f == 0));
    }

    #[test]
    fn crossover_is_quarter_occupancy() {
        assert!(dense_apply_pays(16, 64));
        assert!(!dense_apply_pays(15, 64));
        assert!(dense_apply_pays(0, 0));
        assert!(!dense_apply_pays(0, 1));
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        xor_apply_clear(&mut [0u64; 2], &mut [0u64; 3]);
    }
}
