//! Per-manufacturer device profiles.
//!
//! The paper tests chips from three major manufacturers (anonymized as
//! Mfrs. A, B, C = Micron, Samsung, SK Hynix, per Table 1) and repeatedly
//! finds vendor-specific behaviour: the spread of per-row normalized
//! `HC_first`/BER at `V_PPmin` (Obsvs. 3 and 6), retention-tail shapes
//! (Fig. 10b), weak-cell cluster structure (Fig. 11), and internal address
//! mapping schemes. [`VendorProfile`] carries those parameters.

use crate::mapping::Scheme;
use crate::physics::RetentionProfile;
use serde::{Deserialize, Serialize};

/// DRAM chip manufacturer, anonymized as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Manufacturer {
    /// Mfr. A (Micron).
    A,
    /// Mfr. B (Samsung).
    B,
    /// Mfr. C (SK Hynix).
    C,
}

impl Manufacturer {
    /// All three manufacturers.
    pub const ALL: [Manufacturer; 3] = [Manufacturer::A, Manufacturer::B, Manufacturer::C];

    /// Single-letter label used in module names.
    pub fn letter(&self) -> char {
        match self {
            Manufacturer::A => 'A',
            Manufacturer::B => 'B',
            Manufacturer::C => 'C',
        }
    }

    /// Real-world name (Table 1).
    pub fn name(&self) -> &'static str {
        match self {
            Manufacturer::A => "Micron",
            Manufacturer::B => "Samsung",
            Manufacturer::C => "SK Hynix",
        }
    }
}

impl std::fmt::Display for Manufacturer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mfr. {}", self.letter())
    }
}

/// A deterministic cluster of retention-weak cells: `row_fraction` of rows
/// carry exactly `words` 64-bit words with one weak bit each (the Fig. 11
/// structure).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeakCluster {
    /// Number of affected 64-bit words per affected row.
    pub words: u32,
    /// Fraction of rows affected.
    pub row_fraction: f64,
}

/// Per-manufacturer model parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VendorProfile {
    /// Which manufacturer this profile describes.
    pub mfr: Manufacturer,
    /// Internal row-address scrambling scheme.
    pub scheme: Scheme,
    /// Retention-time distribution at 80 °C / nominal `V_PP`.
    pub retention: RetentionProfile,
    /// Log-σ of the per-row `HC_first` voltage-response spread around the
    /// module-level target (drives the widths in Figs. 4 and 6).
    pub row_multiplier_sigma: f64,
    /// Clamp range for per-row normalized `HC_first` at `V_PPmin`
    /// (Obsv. 6: A 0.94–1.52, B 0.92–1.86, C 0.91–1.35).
    pub multiplier_range: (f64, f64),
    /// Range of per-row critical-charge sense margins (V).
    pub margin_range: (f64, f64),
    /// Range of the per-row `dq_share` split passed to
    /// [`crate::physics::solve_coeffs`]: how much of the row's voltage
    /// response comes from weaker hammering vs. weaker charge restoration.
    pub dq_share_range: (f64, f64),
    /// Within-row log-σ of per-cell disturbance thresholds.
    pub cell_sigma: f64,
    /// Weak-cell clusters that fail at a 128 ms refresh window (but not
    /// 64 ms) when operated at `V_PPmin` (Fig. 11b).
    pub cluster128: Vec<WeakCluster>,
    /// Per-cell activation-latency jitter around the row requirement (ns).
    pub trcd_jitter_ns: f64,
    /// Number of post-manufacturing row repairs per bank.
    pub repairs_per_bank: u32,
}

/// Returns the profile for a manufacturer.
pub fn profile(mfr: Manufacturer) -> VendorProfile {
    match mfr {
        // Mfr. A: tight voltage response (49.6 % of rows vary < 2 % in BER),
        // no 64 ms retention failures, direct mapping, lowest 4 s retention
        // BER growth (0.3 % → 0.8 %).
        Manufacturer::A => VendorProfile {
            mfr,
            scheme: Scheme::Direct,
            retention: RetentionProfile {
                mu_ln_s: 4.68,
                sigma_ln: 1.20,
                vpp_exponent: 1.0,
                ea_ev: 0.55,
            },
            row_multiplier_sigma: 0.055,
            multiplier_range: (0.94, 1.52),
            margin_range: (0.15, 0.50),
            dq_share_range: (0.70, 0.97),
            cell_sigma: 1.0,
            cluster128: vec![WeakCluster {
                words: 1,
                row_fraction: 0.001,
            }],
            trcd_jitter_ns: 0.25,
            repairs_per_bank: 8,
        },
        // Mfr. B: widest spread (0.92–1.86), pair-mirrored rows, strongest
        // 64 ms weak-cell structure (15.5 % of rows with four weak words in
        // the affected modules).
        Manufacturer::B => VendorProfile {
            mfr,
            scheme: Scheme::PairMirror,
            retention: RetentionProfile {
                mu_ln_s: 4.98,
                sigma_ln: 1.25,
                vpp_exponent: 0.93,
                ea_ev: 0.55,
            },
            row_multiplier_sigma: 0.13,
            multiplier_range: (0.92, 1.86),
            margin_range: (0.15, 0.55),
            dq_share_range: (0.45, 0.95),
            cell_sigma: 1.0,
            cluster128: vec![WeakCluster {
                words: 2,
                row_fraction: 0.047,
            }],
            trcd_jitter_ns: 0.30,
            repairs_per_bank: 12,
        },
        // Mfr. C: consistent improvement (83.5 % of rows gain HC_first; BER
        // falls ≥ 5 % in all rows), shuffled blocks, highest baseline 4 s
        // retention BER (1.4 % → 2.5 %).
        Manufacturer::C => VendorProfile {
            mfr,
            scheme: Scheme::BlockShuffle,
            retention: RetentionProfile {
                mu_ln_s: 4.20,
                sigma_ln: 1.20,
                vpp_exponent: 0.75,
                ea_ev: 0.55,
            },
            row_multiplier_sigma: 0.065,
            multiplier_range: (0.91, 1.35),
            margin_range: (0.20, 0.50),
            dq_share_range: (0.60, 0.95),
            cell_sigma: 1.0,
            cluster128: vec![WeakCluster {
                words: 1,
                row_fraction: 0.002,
            }],
            trcd_jitter_ns: 0.25,
            repairs_per_bank: 10,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_distinct_profiles() {
        let a = profile(Manufacturer::A);
        let b = profile(Manufacturer::B);
        let c = profile(Manufacturer::C);
        assert_ne!(a.scheme, b.scheme);
        assert_ne!(b.scheme, c.scheme);
        assert_eq!(a.mfr, Manufacturer::A);
    }

    #[test]
    fn multiplier_ranges_match_obsv6() {
        assert_eq!(profile(Manufacturer::A).multiplier_range, (0.94, 1.52));
        assert_eq!(profile(Manufacturer::B).multiplier_range, (0.92, 1.86));
        assert_eq!(profile(Manufacturer::C).multiplier_range, (0.91, 1.35));
    }

    #[test]
    fn b_has_widest_spread() {
        let widest = profile(Manufacturer::B).row_multiplier_sigma;
        assert!(widest > profile(Manufacturer::A).row_multiplier_sigma);
        assert!(widest > profile(Manufacturer::C).row_multiplier_sigma);
    }

    #[test]
    fn retention_tail_order_matches_fig10b() {
        // At a 4 s window and nominal V_PP, Mfr. C has the highest BER
        // (1.4 %), then A (0.3 %), then B (0.2 %): C's log-mean must be the
        // smallest (shortest typical retention).
        let mu = |m| profile(m).retention.mu_ln_s;
        assert!(mu(Manufacturer::C) < mu(Manufacturer::A));
        assert!(mu(Manufacturer::A) < mu(Manufacturer::B));
    }

    #[test]
    fn cluster128_fractions_match_fig11b() {
        assert_eq!(profile(Manufacturer::A).cluster128[0].row_fraction, 0.001);
        assert_eq!(profile(Manufacturer::B).cluster128[0].row_fraction, 0.047);
        assert_eq!(profile(Manufacturer::B).cluster128[0].words, 2);
        assert_eq!(profile(Manufacturer::C).cluster128[0].row_fraction, 0.002);
    }

    #[test]
    fn display_and_names() {
        assert_eq!(Manufacturer::B.to_string(), "Mfr. B");
        assert_eq!(Manufacturer::A.name(), "Micron");
        assert_eq!(Manufacturer::ALL.len(), 3);
    }
}
