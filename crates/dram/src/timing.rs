//! DDR4 timing parameters.
//!
//! All values in nanoseconds. The defaults are the study's operating point:
//! `t_RCD = 13.5 ns` (the nominal value the paper sweeps around in Alg. 2,
//! quantized by SoftMC's 1.5 ns command slots), `t_RAS = 35 ns`,
//! `t_RP = 13.5 ns`, and a 64 ms nominal refresh window.

use serde::{Deserialize, Serialize};

/// SoftMC's command-slot granularity (§4.3, footnote 10): "Our version of
/// SoftMC can send a DRAM command every 1.5 ns".
pub const COMMAND_SLOT_NS: f64 = 1.5;

/// Nominal activate-to-read latency (ns).
pub const NOMINAL_T_RCD_NS: f64 = 13.5;

/// Nominal activate-to-precharge (charge restoration) latency (ns).
pub const NOMINAL_T_RAS_NS: f64 = 35.0;

/// Nominal precharge latency (ns).
pub const NOMINAL_T_RP_NS: f64 = 13.5;

/// Nominal refresh window (ms): every cell refreshed at least this often.
pub const NOMINAL_T_REFW_MS: f64 = 64.0;

/// A set of DRAM timing parameters used by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Activate-to-read delay (ns).
    pub t_rcd_ns: f64,
    /// Activate-to-precharge delay (ns).
    pub t_ras_ns: f64,
    /// Precharge-to-activate delay (ns).
    pub t_rp_ns: f64,
    /// Refresh window (ms).
    pub t_refw_ms: f64,
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams {
            t_rcd_ns: NOMINAL_T_RCD_NS,
            t_ras_ns: NOMINAL_T_RAS_NS,
            t_rp_ns: NOMINAL_T_RP_NS,
            t_refw_ms: NOMINAL_T_REFW_MS,
        }
    }
}

impl TimingParams {
    /// Duration of one activate–precharge cycle (ns): the hammering period.
    pub fn act_pre_period_ns(&self) -> f64 {
        self.t_ras_ns + self.t_rp_ns
    }

    /// Returns a copy with a different `t_RCD`.
    pub fn with_t_rcd(mut self, t_rcd_ns: f64) -> Self {
        self.t_rcd_ns = t_rcd_ns;
        self
    }
}

/// Quantizes a latency up to the next SoftMC command slot (1.5 ns).
pub fn quantize_to_slot(latency_ns: f64) -> f64 {
    (latency_ns / COMMAND_SLOT_NS).ceil() * COMMAND_SLOT_NS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_nominal() {
        let t = TimingParams::default();
        assert_eq!(t.t_rcd_ns, 13.5);
        assert_eq!(t.t_ras_ns, 35.0);
        assert_eq!(t.t_rp_ns, 13.5);
        assert_eq!(t.t_refw_ms, 64.0);
    }

    #[test]
    fn hammer_period() {
        let t = TimingParams::default();
        assert_eq!(t.act_pre_period_ns(), 48.5);
        // 300K double-sided hammers fit inside the paper's 30 ms test window
        let total_ms = 2.0 * 300_000.0 * t.act_pre_period_ns() * 1e-6;
        assert!(total_ms < 30.0, "hammer session takes {total_ms} ms");
    }

    #[test]
    fn with_t_rcd_builder() {
        let t = TimingParams::default().with_t_rcd(24.0);
        assert_eq!(t.t_rcd_ns, 24.0);
        assert_eq!(t.t_ras_ns, 35.0);
    }

    #[test]
    fn quantization_rounds_up_to_slots() {
        assert_eq!(quantize_to_slot(13.5), 13.5);
        assert_eq!(quantize_to_slot(13.6), 15.0);
        assert_eq!(quantize_to_slot(0.1), 1.5);
        assert_eq!(quantize_to_slot(0.0), 0.0);
    }
}
