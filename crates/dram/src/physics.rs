//! `V_PP`-dependent failure physics.
//!
//! These functions encode the four mechanisms the paper measures, in the
//! normalized form the device model consumes. All voltage behaviour is
//! anchored to the SPICE results of the companion `hammervolt-spice` crate
//! (Figs. 8–9) and the paper's observations.

use serde::{Deserialize, Serialize};

/// DRAM array supply voltage (V).
pub const VDD: f64 = 1.2;

/// Nominal wordline voltage (V); the paper's baseline for all normalization.
pub const VPP_NOMINAL: f64 = 2.5;

/// Lowest `V_PP` any module accepts before I/O handshake fails entirely;
/// below this, [`crate::DramError::VoltageOutOfRange`] applies regardless of
/// the module's own `V_PPmin`.
pub const VPP_ABSOLUTE_MIN: f64 = 0.5;

/// Highest safe `V_PP` (absolute maximum rating).
pub const VPP_ABSOLUTE_MAX: f64 = 3.0;

/// Bitline sense floor (V): stored charge below this is unreadable. Used as
/// the reference point for charge-fraction scaling.
pub const V_SENSE_FLOOR: f64 = 0.35;

/// Restored cell voltage at a given wordline voltage (Obsv. 10).
///
/// Linear fit to the self-consistent access-transistor saturation computed by
/// the SPICE model (`hammervolt-spice::dram_cell::restore_saturation`):
/// full `V_DD` above the ≈1.96 V knee, ≈0.87·V_PP − 0.51 below it.
///
/// ```
/// use hammervolt_dram::physics::restore_level;
/// assert_eq!(restore_level(2.5), 1.2);
/// assert!((restore_level(1.7) - 0.973).abs() < 0.01);
/// ```
pub fn restore_level(vpp: f64) -> f64 {
    (0.87 * vpp - 0.506).clamp(0.0, VDD)
}

/// Restored charge as a fraction of full `V_DD` charge, measured above the
/// sense floor. 1.0 at nominal `V_PP`, smaller below the knee.
pub fn restore_fraction(vpp: f64) -> f64 {
    ((restore_level(vpp) - V_SENSE_FLOOR) / (VDD - V_SENSE_FLOOR)).max(0.0)
}

/// Per-row RowHammer voltage-response coefficients.
///
/// `sensitivity` is the relative change in per-activation disturbance per
/// volt of `V_PP` (electron injection + capacitive crosstalk both grow with
/// `V_PP`, §2.3). `sense_margin` is the cell population's effective critical
/// voltage margin: rows whose margin sits close to the reduced restore level
/// lose critical charge quickly at low `V_PP` and can flip *more* easily —
/// the paper's minority-direction rows (Obsvs. 2 and 5).
/// `restore_shift_v` shifts the row's restoration knee: cells with weaker
/// access transistors (negative shift) start losing charge at a *higher*
/// `V_PP` than the typical 1.96 V knee — this is what lets rows in modules
/// whose `V_PPmin` is 2.0 V (e.g. B0) still show restoration-driven BER
/// increases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisturbCoeffs {
    /// Relative disturbance change per volt (1/V), typically 0.05–0.75.
    pub sensitivity: f64,
    /// Critical-charge voltage margin (V), in `(V_SENSE_FLOOR, VDD)`.
    pub sense_margin: f64,
    /// Per-row shift of the restoration knee (V); negative = weaker device.
    pub restore_shift_v: f64,
}

/// Relative per-activation disturbance at `vpp`, normalized to 1.0 at the
/// nominal 2.5 V. Clamped to stay positive.
pub fn dq_relative(vpp: f64, coeffs: &DisturbCoeffs) -> f64 {
    (1.0 + coeffs.sensitivity * (vpp - VPP_NOMINAL)).max(0.05)
}

/// Relative critical charge at `vpp`, normalized to 1.0 at nominal.
///
/// Above the row's restoration knee this is exactly 1; below it, the reduced
/// restored level eats into the margin.
pub fn qcrit_relative(vpp: f64, coeffs: &DisturbCoeffs) -> f64 {
    let restored = restore_level(vpp + coeffs.restore_shift_v);
    let nominal = restore_level(VPP_NOMINAL + coeffs.restore_shift_v);
    ((restored - coeffs.sense_margin) / (nominal - coeffs.sense_margin).max(1e-6)).max(0.05)
}

/// Multiplier on a cell's nominal `HC_first` threshold at `vpp`.
///
/// `> 1` means the row needs *more* hammers at this voltage (the dominant
/// trend under reduced `V_PP`, Obsv. 4); `< 1` means fewer (Obsv. 5).
#[inline]
pub fn hc_multiplier(vpp: f64, coeffs: &DisturbCoeffs) -> f64 {
    qcrit_relative(vpp, coeffs) / dq_relative(vpp, coeffs)
}

/// Constructs row coefficients that realize `target_multiplier` *exactly* at
/// `vpp_min`, splitting the effect between the two mechanisms:
///
/// - the per-activation disturbance shrinks to `dq_share` of its nominal
///   value at `vpp_min` (sets `sensitivity`),
/// - the critical charge shrinks to `target_multiplier × dq_share` of
///   nominal (sets the restoration-knee shift for the given margin).
///
/// `dq_share ∈ (0, 1]`: 1 means the whole change comes from weaker charge
/// restoration; small values mean it comes from weaker hammering. Rows with
/// `target_multiplier < 1` (the Obsv. 2/5 minority) fall out naturally: their
/// critical-charge loss outweighs their disturbance reduction.
///
/// Used at module-instantiation time to calibrate each row against the
/// Table 3 endpoint measurements.
pub fn solve_coeffs(
    target_multiplier: f64,
    vpp_min: f64,
    sense_margin: f64,
    dq_share: f64,
) -> DisturbCoeffs {
    let dv = VPP_NOMINAL - vpp_min; // positive
    let target = target_multiplier.max(0.05);
    // dq at vpp_min must equal r; qcrit must equal target·r ≤ 1.
    let r = dq_share.clamp(0.05, 1.0).min(1.0 / target);
    let sensitivity = if dv > 1e-9 { (1.0 - r) / dv } else { 0.0 };
    let qcrit_desired = (target * r).min(1.0);
    // Invert qcrit(vpp_min) = q for the knee shift. Two regimes:
    //
    // 1. The nominal operating point (2.5 V + shift) sits above the knee, so
    //    the normalization denominator is (VDD − margin):
    //    restore(vpp_min + shift) = margin + q·(VDD − margin).
    // 2. The shift is so negative that even nominal V_PP sits below the
    //    knee — a chronically weak row that never reaches full VDD. Both
    //    numerator and denominator are then linear in the shift and the
    //    equation solves in closed form.
    const KNEE_SHIFT: f64 = 1.961 - VPP_NOMINAL; // nominal hits the knee here
    const A: f64 = 0.87; // restore_level slope
    const B0: f64 = -0.506; // restore_level intercept
    let q = qcrit_desired;
    let restore_shift_v = if q >= 1.0 - 1e-12 {
        // No degradation at vpp_min: park the knee safely below it.
        (1.97 - vpp_min).max(0.0)
    } else {
        let restore_needed = sense_margin + q * (VDD - sense_margin);
        let s1 = (restore_needed - B0) / A - vpp_min;
        if s1 >= KNEE_SHIFT {
            s1
        } else {
            // Regime 2: q = (A(vpp_min+s)+B − m) / (A(2.5+s)+B − m)
            let b = B0 - sense_margin;
            let denom = A * (q - 1.0);
            if denom.abs() < 1e-12 {
                s1
            } else {
                (A * vpp_min + b * (1.0 - q) - VPP_NOMINAL * q * A) / denom
            }
        }
    };
    DisturbCoeffs {
        sensitivity,
        sense_margin,
        restore_shift_v,
    }
}

/// Per-row activation-latency voltage response: the minimum reliable
/// `t_RCD` grows as `V_PP` falls (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrcdCoeffs {
    /// Required `t_RCD` at nominal `V_PP` (ns).
    pub base_ns: f64,
    /// Latency growth coefficient (ns/V^curve).
    pub slope_ns: f64,
    /// Curvature exponent of the growth (dimensionless, ≥ 1).
    pub curve: f64,
}

/// Required activation latency at `vpp` (ns).
pub fn t_rcd_required_ns(vpp: f64, coeffs: &TrcdCoeffs) -> f64 {
    let dv = (VPP_NOMINAL - vpp).max(0.0);
    coeffs.base_ns + coeffs.slope_ns * dv.powf(coeffs.curve)
}

/// Required charge-restoration latency at `vpp` (ns), calibrated to the
/// SPICE t_RASmin study (Fig. 9b): ≈21 ns at nominal, rising toward ≈30 ns
/// once the restoration knee is crossed.
pub fn t_ras_required_ns(vpp: f64) -> f64 {
    21.0 + 9.0 * (1.0 - restore_fraction(vpp)).sqrt()
}

/// Per-vendor retention-time distribution shape (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionProfile {
    /// Log-mean of per-cell retention time at 80 °C, nominal `V_PP`
    /// (ln seconds).
    pub mu_ln_s: f64,
    /// Log-standard-deviation of per-cell retention time.
    pub sigma_ln: f64,
    /// Exponent coupling retention time to the restored-charge fraction.
    pub vpp_exponent: f64,
    /// Arrhenius activation energy (eV) for temperature scaling.
    pub ea_ev: f64,
}

/// Boltzmann constant in eV/K.
const K_B_EV: f64 = 8.617_333e-5;

/// Reference temperature for retention calibration (the paper tests
/// retention at 80 °C).
pub const RETENTION_REF_CELSIUS: f64 = 80.0;

impl RetentionProfile {
    /// Multiplier on retention time at `temp_c` relative to the 80 °C
    /// reference (Arrhenius: hotter ⇒ shorter retention).
    #[inline]
    pub fn temperature_scale(&self, temp_c: f64) -> f64 {
        let t = temp_c + 273.15;
        let t_ref = RETENTION_REF_CELSIUS + 273.15;
        (self.ea_ev / K_B_EV * (1.0 / t - 1.0 / t_ref)).exp()
    }

    /// Multiplier on retention time at `vpp` relative to nominal: a partially
    /// restored cell starts closer to the sense floor and fails sooner
    /// (Obsv. 12).
    #[inline]
    pub fn vpp_scale(&self, vpp: f64) -> f64 {
        restore_fraction(vpp).powf(self.vpp_exponent)
    }

    /// Effective retention time of a cell whose 80 °C/nominal-`V_PP` baseline
    /// is `base_s` seconds.
    pub fn effective_retention_s(&self, base_s: f64, temp_c: f64, vpp: f64) -> f64 {
        base_s * self.temperature_scale(temp_c) * self.vpp_scale(vpp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restore_level_matches_spice_calibration() {
        // Paper Obsv. 10: full V_DD at ≥ 2.0 V; −4.1 %/−11 %/−18.1 % at
        // 1.9/1.8/1.7 V.
        assert_eq!(restore_level(2.5), VDD);
        assert_eq!(restore_level(2.0), VDD);
        assert!((restore_level(1.9) / VDD - 0.959).abs() < 0.015);
        assert!((restore_level(1.8) / VDD - 0.890).abs() < 0.015);
        assert!((restore_level(1.7) / VDD - 0.819).abs() < 0.015);
        // monotone, bounded
        assert!(restore_level(1.0) < restore_level(1.5));
        assert!(restore_level(0.0) >= 0.0);
    }

    #[test]
    fn restore_fraction_normalized() {
        assert_eq!(restore_fraction(2.5), 1.0);
        assert!(restore_fraction(1.7) < 1.0);
        assert!(restore_fraction(1.7) > 0.5);
        assert_eq!(restore_fraction(0.5), 0.0);
    }

    #[test]
    fn typical_row_needs_more_hammers_at_low_vpp() {
        // A typical solved row: +7.4 % at a 1.6 V V_PPmin.
        let c = solve_coeffs(1.074, 1.6, 0.3, 0.75);
        assert!((hc_multiplier(1.6, &c) - 1.074).abs() < 1e-9);
        // Above the knee only the disturbance reduction acts, so the
        // multiplier stays at or above 1 everywhere in the sweep.
        for vpp10 in 16..=25 {
            let m = hc_multiplier(vpp10 as f64 / 10.0, &c);
            assert!(m >= 0.999, "m({}) = {m}", vpp10 as f64 / 10.0);
        }
        assert!((hc_multiplier(VPP_NOMINAL, &c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tight_margin_row_flips_easier_at_low_vpp() {
        // Obsv. 5 minority: a row whose critical-charge loss outweighs its
        // disturbance reduction flips *easier* at V_PPmin.
        let c = solve_coeffs(0.91, 1.6, 0.3, 0.9);
        let m = hc_multiplier(1.6, &c);
        assert!((m - 0.91).abs() < 1e-9, "multiplier = {m}");
        // but above its restoration knee the (small) dq effect dominates
        assert!(hc_multiplier(2.3, &c) >= 1.0);
    }

    #[test]
    fn hc_multiplier_magnitudes_bracket_paper_extremes() {
        // B3-like best row: +85.8 % at 1.6 V.
        let strong = solve_coeffs(1.858, 1.6, 0.4, 0.5);
        let m = hc_multiplier(1.6, &strong);
        assert!((m - 1.858).abs() < 1e-9, "m = {m}");
        // C8-like: −9.1 % at 1.6 V.
        let inverse = solve_coeffs(0.909, 1.6, 0.45, 0.95);
        let m = hc_multiplier(1.6, &inverse);
        assert!((m - 0.909).abs() < 1e-9, "m = {m}");
    }

    #[test]
    fn dq_and_qcrit_stay_positive() {
        let c = DisturbCoeffs {
            sensitivity: 0.9,
            sense_margin: 1.1,
            restore_shift_v: 0.0,
        };
        assert!(dq_relative(0.6, &c) > 0.0);
        assert!(qcrit_relative(0.6, &c) > 0.0);
    }

    #[test]
    fn trcd_grows_as_vpp_falls() {
        let c = TrcdCoeffs {
            base_ns: 10.5,
            slope_ns: 1.2,
            curve: 2.0,
        };
        assert_eq!(t_rcd_required_ns(2.5, &c), 10.5);
        let t20 = t_rcd_required_ns(2.0, &c);
        let t15 = t_rcd_required_ns(1.5, &c);
        assert!(t15 > t20 && t20 > 10.5);
        // above nominal: no improvement modeled (clamped)
        assert_eq!(t_rcd_required_ns(2.6, &c), 10.5);
    }

    #[test]
    fn a0_like_trcd_reaches_24ns_at_vppmin() {
        let c = TrcdCoeffs {
            base_ns: 10.5,
            slope_ns: 11.2,
            curve: 2.0,
        };
        let t = t_rcd_required_ns(1.4, &c);
        assert!((t - 24.0).abs() < 1.0, "t = {t}");
        // ...while remaining under nominal 13.5 near nominal voltage
        assert!(t_rcd_required_ns(2.3, &c) < 13.5);
    }

    #[test]
    fn retention_temperature_scaling_is_arrhenius() {
        let p = RetentionProfile {
            mu_ln_s: 4.7,
            sigma_ln: 1.2,
            vpp_exponent: 1.0,
            ea_ev: 0.55,
        };
        assert!((p.temperature_scale(80.0) - 1.0).abs() < 1e-12);
        // cooler ⇒ longer retention, and strongly so
        let s50 = p.temperature_scale(50.0);
        assert!(s50 > 3.0 && s50 < 30.0, "s50 = {s50}");
        // hotter ⇒ shorter
        assert!(p.temperature_scale(85.0) < 1.0);
    }

    #[test]
    fn retention_vpp_scaling_shortens_at_low_vpp() {
        let p = RetentionProfile {
            mu_ln_s: 4.7,
            sigma_ln: 1.2,
            vpp_exponent: 1.0,
            ea_ev: 0.55,
        };
        assert_eq!(p.vpp_scale(2.5), 1.0);
        assert_eq!(p.vpp_scale(2.0), 1.0); // above the knee: unchanged
        assert!(p.vpp_scale(1.5) < 0.7);
        let eff = p.effective_retention_s(10.0, 80.0, 1.5);
        assert!(eff < 7.0 && eff > 3.0, "eff = {eff}");
    }

    #[test]
    fn rowhammer_test_window_respects_retention_at_50c() {
        // §4.1: RowHammer tests run at 50 °C within < 30 ms windows; even a
        // weak cell (1 s at 80 °C) retains for far longer than that at 50 °C.
        let p = RetentionProfile {
            mu_ln_s: 4.7,
            sigma_ln: 1.2,
            vpp_exponent: 1.0,
            ea_ev: 0.55,
        };
        let eff = p.effective_retention_s(1.0, 50.0, 1.5);
        assert!(eff > 0.5, "weak cell retains only {eff} s at 50 °C");
    }

    #[test]
    fn solve_coeffs_hits_target_exactly() {
        for &(target, vpp_min, margin, share) in &[
            (1.858f64, 1.6, 0.37, 0.5), // B3-like
            (0.909, 1.6, 0.45, 0.9),    // C8-like
            (1.074, 1.8, 0.5, 0.8),     // average row
            (0.962, 2.0, 0.3, 0.95),    // B0-like, knee shifted up
            (1.351, 1.5, 0.25, 0.6),    // C5-like
            (1.02, 1.4, 0.5, 0.9),      // deep V_PPmin, mild response
        ] {
            let c = solve_coeffs(target, vpp_min, margin, share);
            let m = hc_multiplier(vpp_min, &c);
            assert!(
                (m - target).abs() < 1e-6,
                "target {target} realized {m} ({c:?})"
            );
            assert!(c.sensitivity >= 0.0, "negative sensitivity for {target}");
        }
    }

    #[test]
    fn solve_coeffs_degenerate_inputs() {
        // target at nominal voltage: zero sensitivity, harmless knee
        let c = solve_coeffs(1.5, VPP_NOMINAL, 0.5, 0.9);
        assert_eq!(c.sensitivity, 0.0);
        // absurd targets stay finite and positive
        let c = solve_coeffs(100.0, 1.6, 0.5, 0.9);
        assert!(hc_multiplier(1.6, &c).is_finite());
        let c = solve_coeffs(0.0, 1.6, 0.5, 0.9);
        assert!(hc_multiplier(1.6, &c) > 0.0);
    }

    #[test]
    fn knee_shift_moves_degradation_onset() {
        let weak = DisturbCoeffs {
            sensitivity: 0.0,
            sense_margin: 0.6,
            restore_shift_v: -0.3,
        };
        let typical = DisturbCoeffs {
            sensitivity: 0.0,
            sense_margin: 0.6,
            restore_shift_v: 0.0,
        };
        // At 2.1 V the weak row is already degraded, the typical row is not.
        assert!(qcrit_relative(2.1, &weak) < 1.0);
        assert_eq!(qcrit_relative(2.1, &typical), 1.0);
    }
}
