//! Serial Presence Detect (SPD) encoding.
//!
//! The paper identifies die density and revision "by reading the information
//! stored in the SPD" when chip markings are removed (Table 3's footnote).
//! This module encodes the DDR4 SPD fields the study reads — density/banks
//! (byte 4), row/column addressing (byte 5), organization (byte 12), module
//! manufacturer metadata (bytes 320+, simplified), and die revision — and
//! decodes them back, so a [`crate::registry::ModuleSpec`] can round-trip
//! through the same interface a real reader uses.

use crate::error::DramError;
use crate::geometry::{ChipOrg, Density};
use crate::registry::ModuleSpec;
use serde::{Deserialize, Serialize};

/// Byte offsets used from the DDR4 SPD layout (JESD21-C annex L, abridged).
mod offset {
    /// SDRAM density and internal banks.
    pub const DENSITY_BANKS: usize = 4;
    /// Row and column address bits.
    pub const ADDRESSING: usize = 5;
    /// Module organization (device width, ranks).
    pub const ORGANIZATION: usize = 12;
    /// Die revision (vendor-specific region, as the study reads it).
    pub const DIE_REVISION: usize = 349;
    /// Manufacturing date: week/year (module-specific region).
    pub const MFR_YEAR: usize = 323;
    /// Manufacturing week.
    pub const MFR_WEEK: usize = 324;
}

/// A 512-byte DDR4 SPD image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpdImage {
    bytes: Vec<u8>,
}

impl SpdImage {
    /// Encodes the SPD fields of a module spec.
    pub fn encode(spec: &ModuleSpec) -> Self {
        let mut bytes = vec![0u8; 512];
        // byte 4: bits 3:0 total capacity per die, bits 5:4 bank address bits
        let cap_code = match spec.density {
            Density::D4Gb => 0b0100,
            Density::D8Gb => 0b0101,
            Density::D16Gb => 0b0110,
        };
        bytes[offset::DENSITY_BANKS] = cap_code | (0b01 << 4); // 4 bank groups
                                                               // byte 5: bits 5:3 row bits − 12, bits 2:0 column bits − 9
        let geometry = spec.geometry();
        let row_bits = (32 - (geometry.rows_per_bank - 1).leading_zeros()) as u8;
        bytes[offset::ADDRESSING] = ((row_bits - 12) << 3) | (10 - 9);
        // byte 12: bits 2:0 device width code
        bytes[offset::ORGANIZATION] = match spec.org {
            ChipOrg::X4 => 0b000,
            ChipOrg::X8 => 0b001,
            ChipOrg::X16 => 0b010,
        };
        bytes[offset::DIE_REVISION] = spec.die_revision.map(|c| c as u8).unwrap_or(0);
        if let Some((week, year)) = spec.mfr_date {
            bytes[offset::MFR_WEEK] = week;
            bytes[offset::MFR_YEAR] = year;
        }
        SpdImage { bytes }
    }

    /// Raw image bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Decodes the die density.
    ///
    /// # Errors
    ///
    /// Fails on an unknown capacity code.
    pub fn density(&self) -> Result<Density, DramError> {
        match self.bytes[offset::DENSITY_BANKS] & 0x0F {
            0b0100 => Ok(Density::D4Gb),
            0b0101 => Ok(Density::D8Gb),
            0b0110 => Ok(Density::D16Gb),
            code => Err(DramError::AddressOutOfRange {
                what: format!("unknown SPD density code {code:#06b}"),
            }),
        }
    }

    /// Decodes the chip organization.
    ///
    /// # Errors
    ///
    /// Fails on an unknown width code.
    pub fn organization(&self) -> Result<ChipOrg, DramError> {
        match self.bytes[offset::ORGANIZATION] & 0b111 {
            0b000 => Ok(ChipOrg::X4),
            0b001 => Ok(ChipOrg::X8),
            0b010 => Ok(ChipOrg::X16),
            code => Err(DramError::AddressOutOfRange {
                what: format!("unknown SPD width code {code:#05b}"),
            }),
        }
    }

    /// Decodes the row address bits.
    pub fn row_address_bits(&self) -> u8 {
        ((self.bytes[offset::ADDRESSING] >> 3) & 0b111) + 12
    }

    /// Decodes the die revision, if recorded (the study finds it blank for
    /// several re-marked DIMMs).
    pub fn die_revision(&self) -> Option<char> {
        match self.bytes[offset::DIE_REVISION] {
            0 => None,
            b => Some(b as char),
        }
    }

    /// Decodes the manufacturing date as (week, year), if recorded.
    pub fn mfr_date(&self) -> Option<(u8, u8)> {
        match (self.bytes[offset::MFR_WEEK], self.bytes[offset::MFR_YEAR]) {
            (0, 0) => None,
            (w, y) => Some((w, y)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{spec, ModuleId};

    #[test]
    fn every_table3_module_round_trips() {
        for id in ModuleId::ALL {
            let s = spec(id);
            let image = SpdImage::encode(&s);
            assert_eq!(image.density().unwrap(), s.density, "{id}");
            assert_eq!(image.organization().unwrap(), s.org, "{id}");
            assert_eq!(image.die_revision(), s.die_revision, "{id}");
            assert_eq!(image.mfr_date(), s.mfr_date, "{id}");
        }
    }

    #[test]
    fn row_bits_match_geometry() {
        let s = spec(ModuleId::C4); // 16Gb x8: 128K rows → 17 bits
        let image = SpdImage::encode(&s);
        assert_eq!(image.row_address_bits(), 17);
        let s = spec(ModuleId::A3); // 4Gb x8: 32K rows → 15 bits
        assert_eq!(SpdImage::encode(&s).row_address_bits(), 15);
    }

    #[test]
    fn image_is_512_bytes() {
        let image = SpdImage::encode(&spec(ModuleId::A0));
        assert_eq!(image.bytes().len(), 512);
    }

    #[test]
    fn corrupted_codes_are_rejected() {
        let mut image = SpdImage::encode(&spec(ModuleId::A0));
        image.bytes[super::offset::DENSITY_BANKS] = 0x0F;
        assert!(image.density().is_err());
        image.bytes[super::offset::ORGANIZATION] = 0b111;
        assert!(image.organization().is_err());
    }

    #[test]
    fn blank_fields_decode_to_none() {
        // A7 has neither die revision nor date documented.
        let image = SpdImage::encode(&spec(ModuleId::A7));
        assert_eq!(image.die_revision(), None);
        assert_eq!(image.mfr_date(), None);
    }
}
