//! The tested-module registry: the paper's Table 3 as calibration data.
//!
//! Each of the thirty DIMMs the paper characterizes (A0–A9, B0–B9, C0–C9) is
//! encoded here with its published metadata and measurements: DIMM model,
//! density, frequency, organization, die revision, manufacturing date, and
//! the RowHammer characteristics at nominal `V_PP` (2.5 V), at `V_PPmin`, and
//! at the recommended `V_PPrec`. [`instantiate`] turns a spec into a live
//! [`DramModule`] whose behaviour is calibrated to those endpoints.

use crate::error::DramError;
use crate::geometry::{ChipOrg, Density, Geometry};
use crate::module::DramModule;
use crate::physics::TrcdCoeffs;
use crate::vendor::{Manufacturer, WeakCluster};
use serde::{Deserialize, Serialize};

/// Identifier of one of the thirty tested modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ModuleId {
    A0,
    A1,
    A2,
    A3,
    A4,
    A5,
    A6,
    A7,
    A8,
    A9,
    B0,
    B1,
    B2,
    B3,
    B4,
    B5,
    B6,
    B7,
    B8,
    B9,
    C0,
    C1,
    C2,
    C3,
    C4,
    C5,
    C6,
    C7,
    C8,
    C9,
}

impl ModuleId {
    /// All thirty modules in Table 3 order.
    pub const ALL: [ModuleId; 30] = [
        ModuleId::A0,
        ModuleId::A1,
        ModuleId::A2,
        ModuleId::A3,
        ModuleId::A4,
        ModuleId::A5,
        ModuleId::A6,
        ModuleId::A7,
        ModuleId::A8,
        ModuleId::A9,
        ModuleId::B0,
        ModuleId::B1,
        ModuleId::B2,
        ModuleId::B3,
        ModuleId::B4,
        ModuleId::B5,
        ModuleId::B6,
        ModuleId::B7,
        ModuleId::B8,
        ModuleId::B9,
        ModuleId::C0,
        ModuleId::C1,
        ModuleId::C2,
        ModuleId::C3,
        ModuleId::C4,
        ModuleId::C5,
        ModuleId::C6,
        ModuleId::C7,
        ModuleId::C8,
        ModuleId::C9,
    ];

    /// The module's manufacturer.
    pub fn manufacturer(&self) -> Manufacturer {
        match (*self as usize) / 10 {
            0 => Manufacturer::A,
            1 => Manufacturer::B,
            _ => Manufacturer::C,
        }
    }

    /// Display label, e.g. `"B3"`.
    pub fn label(&self) -> String {
        format!("{}{}", self.manufacturer().letter(), (*self as usize) % 10)
    }
}

impl std::fmt::Display for ModuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Static description and calibration record of one tested module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleSpec {
    /// Module identifier.
    pub id: ModuleId,
    /// Manufacturer.
    pub mfr: Manufacturer,
    /// DIMM model string.
    pub dimm_model: &'static str,
    /// Die density.
    pub density: Density,
    /// Data-transfer frequency (MT/s).
    pub frequency_mts: u32,
    /// Chip organization.
    pub org: ChipOrg,
    /// Die revision, if documented.
    pub die_revision: Option<char>,
    /// Manufacturing date as (week, year), if documented.
    pub mfr_date: Option<(u8, u8)>,
    /// DRAM chips on the module.
    pub chips: u32,
    /// Minimum `HC_first` across tested rows at nominal `V_PP` (activations).
    pub hc_first_nominal: f64,
    /// RowHammer BER at HC = 300 K, nominal `V_PP`.
    pub ber_nominal: f64,
    /// Lowest `V_PP` at which the module still communicates (V).
    pub vpp_min: f64,
    /// Minimum `HC_first` at `V_PPmin`.
    pub hc_first_at_vppmin: f64,
    /// BER at `V_PPmin`.
    pub ber_at_vppmin: f64,
    /// Recommended operating `V_PP` (V).
    pub vpp_rec: f64,
    /// Minimum `HC_first` at `V_PPrec`.
    pub hc_first_at_rec: f64,
    /// BER at `V_PPrec`.
    pub ber_at_rec: f64,
    /// Activation-latency voltage response.
    pub trcd: TrcdCoeffs,
    /// Weak-cell clusters that fail at the 64 ms window at `V_PPmin`
    /// (Fig. 11a; empty for the 23 clean modules of Obsv. 13).
    pub cluster64: Vec<WeakCluster>,
}

impl ModuleSpec {
    /// Module-level normalized `HC_first` at `V_PPmin` (the calibration
    /// target for the mean row voltage response).
    pub fn hc_multiplier_target(&self) -> f64 {
        self.hc_first_at_vppmin / self.hc_first_nominal
    }

    /// Module-level normalized BER at `V_PPmin`.
    pub fn ber_ratio_at_vppmin(&self) -> f64 {
        self.ber_at_vppmin / self.ber_nominal
    }

    /// Rank geometry of this module.
    pub fn geometry(&self) -> Geometry {
        Geometry::ddr4(self.density, self.org)
    }

    /// Whether this module exhibits retention bit flips at the nominal 64 ms
    /// refresh window when operated at `V_PPmin` (Obsv. 13's seven modules).
    pub fn flips_at_64ms(&self) -> bool {
        !self.cluster64.is_empty()
    }
}

/// `t_RCD` response calibrated through two points: the base requirement at
/// nominal `V_PP` and the requirement at `V_PPmin`, with quadratic growth.
fn trcd_two_point(base_ns: f64, at_vppmin_ns: f64, vpp_min: f64) -> TrcdCoeffs {
    let dv = 2.5 - vpp_min;
    TrcdCoeffs {
        base_ns,
        slope_ns: (at_vppmin_ns - base_ns) / (dv * dv),
        curve: 2.0,
    }
}

/// Fig. 11a weak-cluster structure for the three Mfr. B modules that flip at
/// 64 ms: 15.5 % of rows with four weak words, 0.01 % with 116.
fn cluster64_b() -> Vec<WeakCluster> {
    vec![
        WeakCluster {
            words: 4,
            row_fraction: 0.155,
        },
        WeakCluster {
            words: 116,
            row_fraction: 0.0001,
        },
    ]
}

/// Fig. 11a structure for the four Mfr. C modules: 0.2 % of rows with one
/// weak word.
fn cluster64_c() -> Vec<WeakCluster> {
    vec![WeakCluster {
        words: 1,
        row_fraction: 0.002,
    }]
}

/// Returns the spec for a module.
pub fn spec(id: ModuleId) -> ModuleSpec {
    use ChipOrg::*;
    use Density::*;
    use ModuleId::*;
    // (model, density, MT/s, org, die rev, date, chips,
    //  hcf@2.5, ber@2.5, vppmin, hcf@min, ber@min, vpprec, hcf@rec, ber@rec,
    //  trcd base, trcd@vppmin)
    #[allow(clippy::type_complexity)]
    let row: (
        &'static str,
        Density,
        u32,
        ChipOrg,
        Option<char>,
        Option<(u8, u8)>,
        u32,
        f64,
        f64,
        f64,
        f64,
        f64,
        f64,
        f64,
        f64,
        f64,
        f64,
    ) = match id {
        A0 => (
            "MTA18ASF2G72PZ-2G3B1QK",
            D8Gb,
            2400,
            X4,
            Some('B'),
            Some((11, 19)),
            16,
            39.8e3,
            1.24e-3,
            1.4,
            42.2e3,
            1.00e-3,
            1.4,
            42.2e3,
            1.00e-3,
            10.4,
            23.4,
        ),
        A1 => (
            "MTA18ASF2G72PZ-2G3B1QK",
            D8Gb,
            2400,
            X4,
            Some('B'),
            Some((11, 19)),
            16,
            42.2e3,
            9.90e-4,
            1.4,
            46.4e3,
            7.83e-4,
            1.4,
            46.4e3,
            7.83e-4,
            10.6,
            22.8,
        ),
        A2 => (
            "MTA18ASF2G72PZ-2G3B1QK",
            D8Gb,
            2400,
            X4,
            Some('B'),
            Some((11, 19)),
            16,
            41.0e3,
            1.24e-3,
            1.7,
            39.8e3,
            1.35e-3,
            2.1,
            42.1e3,
            1.55e-3,
            10.5,
            22.3,
        ),
        A3 => (
            "CT4G4DFS8266.C8FF",
            D4Gb,
            2666,
            X8,
            Some('F'),
            Some((7, 21)),
            8,
            16.7e3,
            3.33e-2,
            1.4,
            16.5e3,
            3.52e-2,
            1.7,
            17.0e3,
            3.48e-2,
            10.3,
            12.3,
        ),
        A4 => (
            "CT4G4DFS8266.C8FF",
            D4Gb,
            2666,
            X8,
            Some('F'),
            Some((7, 21)),
            8,
            14.4e3,
            3.18e-2,
            1.5,
            14.4e3,
            3.33e-2,
            2.5,
            14.4e3,
            3.18e-2,
            10.2,
            11.1,
        ),
        A5 => (
            "CT4G4SFS8213.C8FBD1",
            D4Gb,
            2400,
            X8,
            None,
            Some((48, 16)),
            8,
            140.7e3,
            1.39e-6,
            2.4,
            145.4e3,
            3.39e-6,
            2.4,
            145.4e3,
            3.39e-6,
            10.6,
            10.8,
        ),
        A6 => (
            "CT4G4DFS8266.C8FF",
            D4Gb,
            2666,
            X8,
            Some('F'),
            Some((7, 21)),
            8,
            16.5e3,
            3.50e-2,
            1.5,
            16.5e3,
            3.66e-2,
            2.5,
            16.5e3,
            3.50e-2,
            10.4,
            11.2,
        ),
        A7 => (
            "CMV4GX4M1A2133C15",
            D4Gb,
            2133,
            X8,
            None,
            None,
            8,
            16.5e3,
            3.42e-2,
            1.8,
            16.5e3,
            3.52e-2,
            2.5,
            16.5e3,
            3.42e-2,
            10.3,
            11.0,
        ),
        A8 => (
            "MTA18ASF2G72PZ-2G3B1QG",
            D8Gb,
            2400,
            X4,
            Some('B'),
            Some((11, 19)),
            16,
            35.2e3,
            2.38e-3,
            1.4,
            39.8e3,
            2.07e-3,
            1.4,
            39.8e3,
            2.07e-3,
            10.5,
            11.3,
        ),
        A9 => (
            "CMV4GX4M1A2133C15",
            D4Gb,
            2133,
            X8,
            None,
            None,
            8,
            14.3e3,
            3.33e-2,
            1.5,
            14.3e3,
            3.48e-2,
            1.6,
            14.6e3,
            3.47e-2,
            10.4,
            11.2,
        ),
        B0 => (
            "M378A1K43DB2-CTD",
            D8Gb,
            2666,
            X8,
            Some('D'),
            Some((10, 21)),
            8,
            7.9e3,
            1.18e-1,
            2.0,
            7.6e3,
            1.22e-1,
            2.5,
            7.9e3,
            1.18e-1,
            10.5,
            10.9,
        ),
        B1 => (
            "M378A1K43DB2-CTD",
            D8Gb,
            2666,
            X8,
            Some('D'),
            Some((10, 21)),
            8,
            7.3e3,
            1.26e-1,
            2.0,
            7.6e3,
            1.28e-1,
            2.0,
            7.6e3,
            1.28e-1,
            10.4,
            10.8,
        ),
        B2 => (
            "F4-2400C17S-8GNT",
            D4Gb,
            2400,
            X8,
            Some('F'),
            Some((2, 21)),
            8,
            11.2e3,
            2.52e-2,
            1.6,
            12.0e3,
            2.22e-2,
            1.6,
            12.0e3,
            2.22e-2,
            10.8,
            14.4,
        ),
        B3 => (
            "M393A1K43BB1-CTD6Y",
            D8Gb,
            2666,
            X8,
            Some('B'),
            Some((52, 20)),
            8,
            16.6e3,
            2.73e-3,
            1.6,
            21.1e3,
            1.09e-3,
            1.6,
            21.1e3,
            1.09e-3,
            10.5,
            11.5,
        ),
        B4 => (
            "M393A1K43BB1-CTD6Y",
            D8Gb,
            2666,
            X8,
            Some('B'),
            Some((52, 20)),
            8,
            21.0e3,
            2.95e-3,
            1.8,
            19.9e3,
            2.52e-3,
            2.0,
            21.1e3,
            2.68e-3,
            10.4,
            12.25,
        ),
        B5 => (
            "M471A5143EB0-CPB",
            D4Gb,
            2133,
            X8,
            Some('E'),
            Some((8, 17)),
            8,
            21.0e3,
            7.78e-3,
            1.8,
            21.0e3,
            6.02e-3,
            2.0,
            21.1e3,
            8.67e-3,
            10.9,
            14.2,
        ),
        B6 => (
            "CMK16GX4M2B3200C16",
            D8Gb,
            3200,
            X8,
            None,
            None,
            8,
            10.3e3,
            1.14e-2,
            1.7,
            10.5e3,
            9.82e-3,
            1.7,
            10.5e3,
            9.82e-3,
            10.5,
            12.4,
        ),
        B7 => (
            "M378A1K43DB2-CTD",
            D8Gb,
            2666,
            X8,
            Some('D'),
            Some((10, 21)),
            8,
            7.3e3,
            1.32e-1,
            2.0,
            7.6e3,
            1.33e-1,
            2.0,
            7.6e3,
            1.33e-1,
            10.3,
            10.7,
        ),
        B8 => (
            "CMK16GX4M2B3200C16",
            D8Gb,
            3200,
            X8,
            None,
            None,
            8,
            11.6e3,
            2.88e-2,
            1.7,
            10.5e3,
            2.37e-2,
            1.8,
            11.7e3,
            2.58e-2,
            10.6,
            11.5,
        ),
        B9 => (
            "M471A5244CB0-CRC",
            D8Gb,
            2133,
            X8,
            Some('C'),
            Some((19, 19)),
            8,
            11.8e3,
            2.68e-2,
            1.7,
            8.8e3,
            2.39e-2,
            1.8,
            12.3e3,
            2.54e-2,
            10.5,
            11.4,
        ),
        C0 => (
            "F4-2400C17S-8GNT",
            D4Gb,
            2400,
            X8,
            Some('B'),
            Some((2, 21)),
            8,
            19.3e3,
            7.29e-3,
            1.7,
            23.4e3,
            6.61e-3,
            1.7,
            23.4e3,
            6.61e-3,
            10.4,
            11.2,
        ),
        C1 => (
            "F4-2400C17S-8GNT",
            D4Gb,
            2400,
            X8,
            Some('B'),
            Some((2, 21)),
            8,
            19.3e3,
            6.31e-3,
            1.7,
            20.6e3,
            5.90e-3,
            1.7,
            20.6e3,
            5.90e-3,
            10.5,
            11.3,
        ),
        C2 => (
            "KSM32RD8/16HDR",
            D8Gb,
            3200,
            X8,
            Some('D'),
            Some((48, 20)),
            8,
            9.6e3,
            2.82e-2,
            1.5,
            9.2e3,
            2.34e-2,
            2.3,
            10.0e3,
            2.89e-2,
            10.3,
            12.3,
        ),
        C3 => (
            "KSM32RD8/16HDR",
            D8Gb,
            3200,
            X8,
            Some('D'),
            Some((48, 20)),
            8,
            9.3e3,
            2.57e-2,
            1.5,
            8.9e3,
            2.21e-2,
            2.3,
            9.7e3,
            2.66e-2,
            10.4,
            11.2,
        ),
        C4 => (
            "HMAA4GU6AJR8N-XN",
            D16Gb,
            3200,
            X8,
            Some('A'),
            Some((51, 20)),
            8,
            11.6e3,
            3.22e-2,
            1.5,
            11.7e3,
            2.88e-2,
            1.5,
            11.7e3,
            2.88e-2,
            10.5,
            11.3,
        ),
        C5 => (
            "HMAA4GU6AJR8N-XN",
            D16Gb,
            3200,
            X8,
            Some('A'),
            Some((51, 20)),
            8,
            9.4e3,
            3.28e-2,
            1.5,
            12.7e3,
            2.85e-2,
            1.5,
            12.7e3,
            2.85e-2,
            10.4,
            11.2,
        ),
        C6 => (
            "CMV4GX4M1A2133C15",
            D4Gb,
            2133,
            X8,
            Some('C'),
            None,
            8,
            14.2e3,
            3.08e-2,
            1.6,
            15.5e3,
            2.25e-2,
            1.6,
            15.5e3,
            2.25e-2,
            10.3,
            11.1,
        ),
        C7 => (
            "CMV4GX4M1A2133C15",
            D4Gb,
            2133,
            X8,
            Some('C'),
            None,
            8,
            11.7e3,
            3.24e-2,
            1.6,
            13.6e3,
            2.60e-2,
            1.6,
            13.6e3,
            2.60e-2,
            10.4,
            11.2,
        ),
        C8 => (
            "KSM32RD8/16HDR",
            D8Gb,
            3200,
            X8,
            Some('D'),
            Some((48, 20)),
            8,
            11.4e3,
            2.69e-2,
            1.6,
            9.5e3,
            2.57e-2,
            2.5,
            11.4e3,
            2.69e-2,
            10.5,
            11.3,
        ),
        C9 => (
            "F4-2400C17S-8GNT",
            D4Gb,
            2400,
            X8,
            Some('B'),
            Some((2, 21)),
            8,
            12.6e3,
            2.18e-2,
            1.7,
            15.2e3,
            1.63e-2,
            1.7,
            15.2e3,
            1.63e-2,
            10.4,
            12.35,
        ),
    };
    let (
        dimm_model,
        density,
        frequency_mts,
        org,
        die_revision,
        mfr_date,
        chips,
        hcf,
        ber,
        vpp_min,
        hcf_min,
        ber_min,
        vpp_rec,
        hcf_rec,
        ber_rec,
        trcd_base,
        trcd_at_min,
    ) = row;
    // The seven modules of Obsv. 13 that flip at the 64 ms refresh window.
    let cluster64 = match id {
        B6 | B8 | B9 => cluster64_b(),
        C1 | C3 | C5 | C9 => cluster64_c(),
        _ => Vec::new(),
    };
    ModuleSpec {
        id,
        mfr: id.manufacturer(),
        dimm_model,
        density,
        frequency_mts,
        org,
        die_revision,
        mfr_date,
        chips,
        hc_first_nominal: hcf,
        ber_nominal: ber,
        vpp_min,
        hc_first_at_vppmin: hcf_min,
        ber_at_vppmin: ber_min,
        vpp_rec,
        hc_first_at_rec: hcf_rec,
        ber_at_rec: ber_rec,
        trcd: trcd_two_point(trcd_base, trcd_at_min, vpp_min),
        cluster64,
    }
}

/// Instantiates a live device calibrated to a module's Table 3 record.
///
/// The `seed` selects the specific specimen: all cell-level randomness
/// derives from it, so two instantiations with the same seed are identical
/// devices.
///
/// # Errors
///
/// Propagates construction failures from [`DramModule::new`].
pub fn instantiate(id: ModuleId, seed: u64) -> Result<DramModule, DramError> {
    DramModule::new(spec(id), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_modules_ten_per_vendor() {
        assert_eq!(ModuleId::ALL.len(), 30);
        for mfr in Manufacturer::ALL {
            let n = ModuleId::ALL
                .iter()
                .filter(|m| m.manufacturer() == mfr)
                .count();
            assert_eq!(n, 10, "{mfr} has {n} modules");
        }
    }

    #[test]
    fn chip_count_totals_272() {
        let total: u32 = ModuleId::ALL.iter().map(|&m| spec(m).chips).sum();
        assert_eq!(total, 272);
    }

    #[test]
    fn labels_match_table() {
        assert_eq!(ModuleId::A0.label(), "A0");
        assert_eq!(ModuleId::B3.label(), "B3");
        assert_eq!(ModuleId::C9.to_string(), "C9");
    }

    #[test]
    fn extreme_modules_match_table3() {
        // B3 shows the largest module-level BER reduction (0.40×), and its
        // vendor's per-row range tops out at 1.86 — the paper's +85.8 % rows.
        let b3 = spec(ModuleId::B3);
        assert!((b3.hc_multiplier_target() - 1.271).abs() < 0.01);
        assert!(b3.ber_ratio_at_vppmin() < 0.45);
        let min_ber_ratio = ModuleId::ALL
            .iter()
            .map(|&m| spec(m).ber_ratio_at_vppmin())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min_ber_ratio, b3.ber_ratio_at_vppmin());
        // C5 has the largest module-level HC_first gain (1.351×).
        let max_hc = ModuleId::ALL
            .iter()
            .map(|&m| spec(m))
            .max_by(|a, b| {
                a.hc_multiplier_target()
                    .partial_cmp(&b.hc_multiplier_target())
                    .unwrap()
            })
            .unwrap();
        assert_eq!(max_hc.id, ModuleId::C5);
    }

    #[test]
    fn vppmin_extremes_match_section7() {
        // §7: "lowest at 1.4 V for A0 and highest at 2.4 V for A5".
        assert_eq!(spec(ModuleId::A0).vpp_min, 1.4);
        assert_eq!(spec(ModuleId::A5).vpp_min, 2.4);
        let min = ModuleId::ALL
            .iter()
            .map(|&m| spec(m).vpp_min)
            .fold(f64::INFINITY, f64::min);
        let max = ModuleId::ALL
            .iter()
            .map(|&m| spec(m).vpp_min)
            .fold(0.0, f64::max);
        assert_eq!(min, 1.4);
        assert_eq!(max, 2.4);
    }

    #[test]
    fn seven_modules_flip_at_64ms() {
        let flipping: Vec<String> = ModuleId::ALL
            .iter()
            .map(|&m| spec(m))
            .filter(|s| s.flips_at_64ms())
            .map(|s| s.id.label())
            .collect();
        assert_eq!(flipping, vec!["B6", "B8", "B9", "C1", "C3", "C5", "C9"]);
    }

    #[test]
    fn trcd_failing_modules_match_section61() {
        use crate::physics::t_rcd_required_ns;
        // A0–A2 and B2, B5 exceed nominal 13.5 ns at V_PPmin; all others stay
        // under it.
        for &id in &ModuleId::ALL {
            let s = spec(id);
            let worst = t_rcd_required_ns(s.vpp_min, &s.trcd);
            let exceeds = worst > 13.5;
            let expected = matches!(
                id,
                ModuleId::A0 | ModuleId::A1 | ModuleId::A2 | ModuleId::B2 | ModuleId::B5
            );
            assert_eq!(exceeds, expected, "{id}: worst t_RCD = {worst:.1} ns");
            // and nobody needs more than the 24 ns fix
            assert!(worst <= 24.0 + 1e-9);
        }
    }

    #[test]
    fn x4_modules_have_16_chips() {
        for &id in &ModuleId::ALL {
            let s = spec(id);
            let expected = match s.org {
                ChipOrg::X4 => 16,
                ChipOrg::X8 => 8,
                ChipOrg::X16 => 4,
            };
            assert_eq!(s.chips, expected, "{id}");
        }
    }

    #[test]
    fn geometry_scales_with_density() {
        let small = spec(ModuleId::A3).geometry(); // 4Gb x8
        let large = spec(ModuleId::C4).geometry(); // 16Gb x8
        assert_eq!(large.rows_per_bank, 4 * small.rows_per_bank);
    }
}
