//! Deterministic per-cell randomness.
//!
//! Every stochastic property of the device model (cell disturbance
//! thresholds, retention times, activation-latency jitter, orientation) is a
//! pure function of a 64-bit seed derived from the cell's coordinates. This
//! gives the model the two properties the study methodology relies on:
//!
//! - **Reproducibility** — re-testing a row yields the same weak cells, as it
//!   does on real silicon ("consistently predictable bit locations", §1);
//! - **Laziness** — a multi-gigabit module needs no materialized state until
//!   a row is touched.
//!
//! The mixer is `splitmix64`, whose output is well-distributed even for
//! sequential inputs.

/// One round of the splitmix64 mixing function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines two seeds into one.
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    splitmix64(a ^ b.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Seed for a row: `(module_seed, bank, physical_row)`.
#[inline]
pub fn row_seed(module_seed: u64, bank: u32, row: u32) -> u64 {
    combine(module_seed, ((bank as u64) << 40) | row as u64)
}

/// Seed for a cell: `(row_seed, bit index within the row)`.
#[inline]
pub fn cell_seed(row_seed: u64, bit: u32) -> u64 {
    combine(row_seed, 0x5EED_0000_0000_0000 | bit as u64)
}

/// Seed for one work chunk's measurement-noise stream:
/// `(module_seed, bank, chunk index)`.
///
/// The parallel execution engine shards a module's row sample into chunks
/// and rebases the device's cycle-to-cycle noise stream
/// ([`reseed_noise`](../module/struct.DramModule.html#method.reseed_noise))
/// on each chunk's seed. Because the stream depends only on these
/// coordinates — never on which worker ran the chunk or in what order —
/// sweep results are byte-identical for any worker count.
#[inline]
pub fn chunk_seed(module_seed: u64, bank: u32, chunk: u64) -> u64 {
    combine(
        module_seed,
        0xC4A2_0000_0000_0000 ^ ((bank as u64) << 40) ^ chunk,
    )
}

/// Uniform value in `[0, 1)` from a seed (53-bit precision).
#[inline]
pub fn uniform01(seed: u64) -> f64 {
    (splitmix64(seed) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform value in `[lo, hi)` from a seed.
#[inline]
pub fn uniform(seed: u64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * uniform01(seed)
}

/// Standard normal deviate from a seed (inverse-CDF method, Acklam's
/// approximation; |error| < 1.2e-9).
pub fn standard_normal(seed: u64) -> f64 {
    // Map to the open interval (0, 1).
    let mut p = uniform01(seed);
    if p <= 0.0 {
        p = f64::MIN_POSITIVE;
    }
    inverse_normal_cdf(p)
}

/// Inverse standard-normal CDF (quantile function), Acklam's approximation.
///
/// Clamps its argument into the open unit interval rather than erroring —
/// this module's callers always feed it hash-derived probabilities.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    let p = p.clamp(1e-300, 1.0 - 1e-16);
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Standard-normal CDF Φ(x) via the complementary error function
/// (Abramowitz–Stegun 7.1.26; |error| < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(z))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Lognormal deviate with the given log-mean and log-standard-deviation.
#[inline]
pub fn lognormal(seed: u64, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(seed)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_changes_everything() {
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_ne!(splitmix64(0), 0);
        // avalanche sanity: single-bit input change flips many output bits
        let d = (splitmix64(42) ^ splitmix64(43)).count_ones();
        assert!(d > 16, "only {d} bits differ");
    }

    #[test]
    fn seeds_are_coordinate_sensitive() {
        let r1 = row_seed(1, 0, 100);
        let r2 = row_seed(1, 0, 101);
        let r3 = row_seed(1, 1, 100);
        let r4 = row_seed(2, 0, 100);
        assert_ne!(r1, r2);
        assert_ne!(r1, r3);
        assert_ne!(r1, r4);
        assert_ne!(cell_seed(r1, 0), cell_seed(r1, 1));
        // deterministic
        assert_eq!(row_seed(1, 0, 100), r1);
    }

    #[test]
    fn chunk_seeds_are_coordinate_sensitive() {
        let c = chunk_seed(1, 0, 0);
        assert_ne!(c, chunk_seed(1, 0, 1));
        assert_ne!(c, chunk_seed(1, 1, 0));
        assert_ne!(c, chunk_seed(2, 0, 0));
        // deterministic, and distinct from the row-seed domain
        assert_eq!(chunk_seed(1, 0, 0), c);
        assert_ne!(c, row_seed(1, 0, 0));
    }

    #[test]
    fn uniform01_in_range_and_spread() {
        let mut sum = 0.0;
        for i in 0..10_000u64 {
            let u = uniform01(i);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn uniform_respects_bounds() {
        for i in 0..1000u64 {
            let v = uniform(i, 2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let n = 20_000u64;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for i in 0..n {
            let z = standard_normal(combine(9, i));
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn inverse_cdf_round_trips_with_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let x = inverse_normal_cdf(p);
            let back = normal_cdf(x);
            assert!((back - p).abs() < 1e-5, "p={p} x={x} back={back}");
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959_964) - 0.975).abs() < 1e-5);
        assert!((normal_cdf(-1.959_964) - 0.025).abs() < 1e-5);
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn inverse_cdf_clamps_extremes() {
        assert!(inverse_normal_cdf(0.0).is_finite());
        assert!(inverse_normal_cdf(1.0).is_finite());
        assert!(inverse_normal_cdf(0.0) < -30.0);
        assert!(inverse_normal_cdf(1.0) > 5.0);
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let n = 20_000u64;
        let mut values: Vec<f64> = (0..n).map(|i| lognormal(combine(7, i), 2.0, 0.5)).collect();
        values.sort_by(f64::total_cmp);
        let median = values[n as usize / 2];
        assert!(
            (median - 2.0f64.exp()).abs() / 2.0f64.exp() < 0.05,
            "median = {median}"
        );
        assert!(values.iter().all(|&v| v > 0.0));
    }
}
