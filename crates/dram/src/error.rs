//! Error type for DRAM device operations.

use std::fmt;

/// Errors produced by the DRAM device model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DramError {
    /// The module stopped responding because `V_PP` was driven below its
    /// minimum operating level (§4.1: "the lowest V_PP at which the DRAM
    /// module can successfully communicate with the FPGA").
    CommunicationLost {
        /// The requested wordline voltage (V).
        requested_vpp: f64,
        /// The module's minimum operating wordline voltage (V).
        vpp_min: f64,
    },
    /// The requested voltage is outside the physically safe range for the
    /// part (absolute maximum ratings).
    VoltageOutOfRange {
        /// The requested wordline voltage (V).
        requested_vpp: f64,
    },
    /// A bank, row, or column address is outside the module's geometry.
    AddressOutOfRange {
        /// Description of the offending address component.
        what: String,
    },
    /// A command was issued in an illegal bank state, e.g. reading from a
    /// bank with no open row or activating an already-open bank.
    IllegalCommand {
        /// Description of the protocol violation.
        reason: String,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::CommunicationLost {
                requested_vpp,
                vpp_min,
            } => write!(
                f,
                "module stopped responding: V_PP = {requested_vpp:.2} V is below V_PPmin = {vpp_min:.2} V"
            ),
            DramError::VoltageOutOfRange { requested_vpp } => {
                write!(f, "V_PP = {requested_vpp:.2} V outside absolute maximum ratings")
            }
            DramError::AddressOutOfRange { what } => write!(f, "address out of range: {what}"),
            DramError::IllegalCommand { reason } => write!(f, "illegal command: {reason}"),
        }
    }
}

impl std::error::Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DramError::CommunicationLost {
            requested_vpp: 1.3,
            vpp_min: 1.4,
        };
        assert!(e.to_string().contains("1.30"));
        assert!(e.to_string().contains("1.40"));
        assert!(DramError::AddressOutOfRange {
            what: "row 99999".to_string()
        }
        .to_string()
        .contains("row 99999"));
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(DramError::IllegalCommand {
            reason: "read with no open row".to_string(),
        });
        assert!(e.to_string().contains("open row"));
    }
}
