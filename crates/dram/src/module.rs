//! The live DRAM device: state machine, cell materialization, and failure
//! injection.
//!
//! A [`DramModule`] is one DIMM instantiated from its Table 3 spec and a
//! seed. It exposes the raw timing-explicit device interface the SoftMC-style
//! infrastructure drives:
//!
//! - [`DramModule::activate`] / [`DramModule::read`] / [`DramModule::write`] /
//!   [`DramModule::precharge`] — the DDR4 protocol, with caller-supplied
//!   timings (reads take the ACT→RD delay actually used; precharge takes the
//!   elapsed row-open time),
//! - [`DramModule::hammer`] — the bulk activate–precharge loop the engine
//!   uses for hammering (semantically a sequence of ACT/PRE pairs),
//! - [`DramModule::refresh`] — REF, which also feeds the in-DRAM TRR engine,
//! - [`DramModule::set_vpp`] — external wordline-voltage control; fails below
//!   the module's `V_PPmin` exactly as real modules stop responding (§4.1).
//!
//! # Failure injection
//!
//! Bit flips are *materialized* when a row is activated: accumulated
//! RowHammer disturbance and elapsed retention time are converted into
//! deterministic per-cell flips, the row's charge is restored, and its
//! disturbance counter resets — matching the physical process, where a row
//! activation latches whatever the cells currently hold and rewrites it.
//! Reads additionally model transient `t_RCD`-violation corruption.

use crate::error::DramError;
use crate::geometry::Geometry;
use crate::hash;
use crate::mapping::AddressMapping;
use crate::ondie_ecc::OnDieEcc;
use crate::physics::{self, DisturbCoeffs};
use crate::registry::ModuleSpec;
use crate::timing;
use crate::trr::{TrrEngine, TrrPolicy};
use crate::vendor::{self, Manufacturer, VendorProfile};
use hammervolt_obs::counter_add;
use std::collections::HashMap;

/// Hash-domain salts so the independent per-cell properties draw from
/// unrelated streams.
const SALT_HC: u64 = 0x11;
const SALT_RET: u64 = 0x22;
const SALT_TRCD: u64 = 0x33;
const SALT_ORI: u64 = 0x44;
const SALT_PREF: u64 = 0x55;
const SALT_ROW: u64 = 0x66;
const SALT_INIT: u64 = 0x77;
const SALT_CLUSTER: u64 = 0x88;
const SALT_NOISE: u64 = 0x99;

/// Disturbance contribution of a distance-2 aggressor relative to distance-1
/// (the paper's double-sided attacks dominate through immediate neighbors).
const DIST2_WEIGHT: f64 = 0.04;

/// Two-sided synergy: alternating activations on *both* neighbors disturb a
/// victim superadditively (both adjacent wordlines toggle against the cell),
/// which is why the double-sided attack is the most effective shape at a
/// fixed activation budget (§4.2). The effective disturbance is
/// `(0.5·(L+R) + κ·min(L,R)) / (1+κ)`, normalized so the calibrated
/// symmetric double-sided case (`L = R = HC`) yields exactly `HC`.
const TWO_SIDED_KAPPA: f64 = 0.35;

/// State of one tracked (ever-written) row.
#[derive(Debug, Clone)]
struct RowState {
    /// Stored data, one `u64` per column.
    data: Vec<u64>,
    /// As-written reference, kept only when on-die ECC is enabled (the
    /// internal code is computed at write time).
    written: Option<Vec<u64>>,
    /// Time of the last charge restoration (write, activate, or refresh).
    restored_at_ns: f64,
    /// Accumulated weighted aggressor activations from the physically-below
    /// side (distance-1 weight 1, distance-2 scaled).
    disturb_below: f64,
    /// Accumulated weighted aggressor activations from the above side.
    disturb_above: f64,
    /// Charge restoration completeness in `(0, 1]`: below 1 when the row was
    /// last closed before `t_RAS_required` elapsed.
    charge_penalty: f64,
}

/// Cached per-row model parameters, derived from the physical row address.
#[derive(Debug, Clone)]
struct RowParams {
    /// ln of the row's weakest-cell `HC_first` at nominal `V_PP`.
    ln_hc_first: f64,
    /// Log-mean of the per-cell threshold distribution.
    mu_ln: f64,
    /// Log-σ of the per-cell threshold distribution.
    sigma: f64,
    /// Voltage-response coefficients.
    coeffs: DisturbCoeffs,
    /// Required `t_RCD` at nominal `V_PP` for this row (ns).
    trcd_base_ns: f64,
    /// Word indices carrying a 64 ms-window weak cell (Fig. 11a).
    cluster64_words: Vec<u32>,
    /// Word indices carrying a 128 ms-window weak cell (Fig. 11b).
    cluster128_words: Vec<u32>,
}

/// One bank: open-row state plus tracked rows.
#[derive(Debug, Clone, Default)]
struct Bank {
    open_row: Option<u32>,
    rows: HashMap<u32, RowState>,
}

/// A live DRAM module calibrated to a Table 3 record.
#[derive(Debug, Clone)]
pub struct DramModule {
    spec: ModuleSpec,
    profile: VendorProfile,
    geometry: Geometry,
    seed: u64,
    vpp: f64,
    temp_c: f64,
    clock_ns: f64,
    mapping: AddressMapping,
    banks: Vec<Bank>,
    trr: TrrEngine,
    row_params: HashMap<(u32, u32), RowParams>,
    /// Calibrated mean of the exponential per-row `HC_first` spread.
    eta_mean: f64,
    /// Base seed of the cycle-to-cycle measurement-noise stream. Defaults to
    /// a specimen-derived value; the parallel execution engine rebases it per
    /// work chunk so results do not depend on global operation order.
    noise_seed: u64,
    /// Monotone sequence number behind the cycle-to-cycle measurement noise.
    noise_seq: u64,
    /// On-die ECC configuration (None for all Table 3 modules, per §4.1).
    ondie_ecc: OnDieEcc,
    /// Words silently corrected by on-die ECC since instantiation.
    ecc_corrections: u64,
    /// −Φ⁻¹(1/cells_per_row): positions the weakest cell of a row.
    z_n: f64,
}

impl DramModule {
    /// Builds a module from its spec and specimen seed, calibrating the
    /// per-row spread so the module-average BER at HC = 300 K matches the
    /// Table 3 record.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; returns `Result` for forward
    /// compatibility of the constructor contract.
    pub fn new(spec: ModuleSpec, seed: u64) -> Result<Self, DramError> {
        let geometry = spec.geometry();
        Self::with_geometry(spec, seed, geometry)
    }

    /// Builds a module with an overridden geometry (reduced row counts for
    /// fast tests). Cell-level behaviour is unchanged; only the address
    /// ranges shrink.
    ///
    /// # Errors
    ///
    /// Fails if the geometry has no rows or columns.
    pub fn with_geometry(
        spec: ModuleSpec,
        seed: u64,
        geometry: Geometry,
    ) -> Result<Self, DramError> {
        if geometry.rows_per_bank == 0 || geometry.columns_per_row == 0 || geometry.banks == 0 {
            return Err(DramError::AddressOutOfRange {
                what: "geometry must have at least one bank, row, and column".to_string(),
            });
        }
        let profile = vendor::profile(spec.mfr);
        let cells = geometry.bits_per_row() as f64;
        let z_n = -hash::inverse_normal_cdf(1.0 / cells);
        let eta_mean = calibrate_eta_mean(&spec, profile.cell_sigma, z_n);
        let mapping = AddressMapping::with_repairs(
            profile.scheme,
            geometry.rows_per_bank,
            profile.repairs_per_bank,
            hash::combine(seed, 0xBEEF),
        );
        let trr_policy = match spec.mfr {
            Manufacturer::A => TrrPolicy::Periodic { period: 2048 },
            Manufacturer::B => TrrPolicy::Probabilistic { chance: 1024 },
            Manufacturer::C => TrrPolicy::FrequencyTable { entries: 8 },
        };
        Ok(DramModule {
            profile,
            geometry,
            seed,
            vpp: physics::VPP_NOMINAL,
            temp_c: 50.0,
            clock_ns: 0.0,
            mapping,
            banks: vec![Bank::default(); geometry.banks as usize],
            trr: TrrEngine::new(trr_policy, hash::combine(seed, 0x7272)),
            row_params: HashMap::new(),
            eta_mean,
            noise_seed: seed ^ SALT_NOISE,
            noise_seq: 0,
            ondie_ecc: OnDieEcc::None,
            ecc_corrections: 0,
            z_n,
            spec,
        })
    }

    /// The module's calibration record.
    pub fn spec(&self) -> &ModuleSpec {
        &self.spec
    }

    /// The module's vendor profile.
    pub fn profile(&self) -> &VendorProfile {
        &self.profile
    }

    /// The geometry in effect (may be reduced for tests).
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The internal address mapping. The methodology is expected to *not*
    /// use this directly but reverse engineer adjacency through hammering;
    /// it is exposed for validation and for constructing ground truth.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Total row activations the device has seen (including bulk hammer
    /// activations), as observed by the internal TRR tracker.
    pub fn total_activations(&self) -> u64 {
        self.trr.activation_count()
    }

    /// The on-die ECC configuration.
    pub fn ondie_ecc(&self) -> OnDieEcc {
        self.ondie_ecc
    }

    /// Enables or disables on-die ECC. The study's modules run with
    /// [`OnDieEcc::None`] (§4.1); enabling SECDED is the extension that
    /// quantifies how much of the failure signal an internal code masks.
    pub fn set_ondie_ecc(&mut self, ecc: OnDieEcc) {
        self.ondie_ecc = ecc;
    }

    /// Words silently corrected by on-die ECC so far.
    pub fn ecc_corrections(&self) -> u64 {
        self.ecc_corrections
    }

    /// Current wordline voltage (V).
    pub fn vpp(&self) -> f64 {
        self.vpp
    }

    /// Drives the external `V_PP` rail.
    ///
    /// # Errors
    ///
    /// - [`DramError::VoltageOutOfRange`] outside absolute maximum ratings,
    /// - [`DramError::CommunicationLost`] below the module's `V_PPmin`.
    pub fn set_vpp(&mut self, vpp: f64) -> Result<(), DramError> {
        if !(physics::VPP_ABSOLUTE_MIN..=physics::VPP_ABSOLUTE_MAX).contains(&vpp) {
            return Err(DramError::VoltageOutOfRange { requested_vpp: vpp });
        }
        // Sub-millivolt tolerance: the supply's resolution is 1 mV and
        // floating-point ladder arithmetic must not flip the verdict at the
        // boundary.
        if vpp < self.spec.vpp_min - 1e-6 {
            return Err(DramError::CommunicationLost {
                requested_vpp: vpp,
                vpp_min: self.spec.vpp_min,
            });
        }
        self.vpp = vpp;
        Ok(())
    }

    /// Current die temperature (°C).
    pub fn temperature_c(&self) -> f64 {
        self.temp_c
    }

    /// Sets the die temperature (the thermal controller's job).
    pub fn set_temperature_c(&mut self, temp_c: f64) {
        self.temp_c = temp_c;
    }

    /// Current device time (ns).
    pub fn now_ns(&self) -> f64 {
        self.clock_ns
    }

    /// Advances device time (the test infrastructure owns the clock).
    pub fn advance_ns(&mut self, dt_ns: f64) {
        self.clock_ns += dt_ns.max(0.0);
    }

    /// Activates a row: materializes pending failures, restores charge, and
    /// opens the row for column access.
    ///
    /// # Errors
    ///
    /// Fails on bad addresses or if the bank already has an open row.
    pub fn activate(&mut self, bank: u32, row: u32) -> Result<(), DramError> {
        self.geometry.check_bank(bank)?;
        self.geometry.check_row(row)?;
        if let Some(open) = self.banks[bank as usize].open_row {
            return Err(DramError::IllegalCommand {
                reason: format!("bank {bank} already has row {open} open"),
            });
        }
        self.disturb_neighbors(bank, row, 1.0);
        self.trr.record_activations(row, 1);
        self.materialize_and_restore(bank, row);
        self.banks[bank as usize].open_row = Some(row);
        Ok(())
    }

    /// Reads the 64-bit word at `column` from the open row.
    ///
    /// `t_rcd_used_ns` is the ACT→RD delay the controller actually used; if
    /// it is shorter than the row's requirement at the current `V_PP`, the
    /// returned word is (transiently) corrupted (§6.1).
    ///
    /// # Errors
    ///
    /// Fails on bad addresses or if no row is open.
    pub fn read(&mut self, bank: u32, column: u32, t_rcd_used_ns: f64) -> Result<u64, DramError> {
        self.geometry.check_bank(bank)?;
        self.geometry.check_column(column)?;
        let row = self.banks[bank as usize]
            .open_row
            .ok_or_else(|| DramError::IllegalCommand {
                reason: format!("read from bank {bank} with no open row"),
            })?;
        let (stored, written) = self.banks[bank as usize]
            .rows
            .get(&row)
            .map(|r| {
                (
                    r.data[column as usize],
                    r.written.as_ref().map(|w| w[column as usize]),
                )
            })
            .unwrap_or_else(|| (self.uninitialized_word(bank, row, column), None));
        // On-die ECC decodes the array word first; an activation-latency
        // violation then corrupts the transfer to the interface.
        let delivered = match written {
            Some(w) => {
                let result = self.ondie_ecc.read(stored, w);
                self.ecc_corrections += result.corrected_bits as u64;
                result.data
            }
            None => stored,
        };
        Ok(self.corrupt_for_trcd(bank, row, column, delivered, t_rcd_used_ns))
    }

    /// Writes a 64-bit word into the open row.
    ///
    /// # Errors
    ///
    /// Fails on bad addresses or if no row is open.
    pub fn write(&mut self, bank: u32, column: u32, value: u64) -> Result<(), DramError> {
        self.geometry.check_bank(bank)?;
        self.geometry.check_column(column)?;
        let row = self.banks[bank as usize]
            .open_row
            .ok_or_else(|| DramError::IllegalCommand {
                reason: format!("write to bank {bank} with no open row"),
            })?;
        self.ensure_row(bank, row);
        let clock = self.clock_ns;
        let ecc = self.ondie_ecc;
        let columns = self.geometry.columns_per_row as usize;
        let state = self.banks[bank as usize]
            .rows
            .get_mut(&row)
            .expect("ensured");
        state.data[column as usize] = value;
        if ecc != OnDieEcc::None {
            state.written.get_or_insert_with(|| state.data.clone())[column as usize] = value;
        }
        let _ = columns;
        state.restored_at_ns = clock;
        Ok(())
    }

    /// Precharges the bank, closing the open row. `elapsed_since_act_ns` is
    /// the time the row was kept open; closing earlier than the required
    /// restoration latency leaves the row partially charged (§6.2).
    ///
    /// # Errors
    ///
    /// Fails if the bank has no open row.
    pub fn precharge(&mut self, bank: u32, elapsed_since_act_ns: f64) -> Result<(), DramError> {
        self.geometry.check_bank(bank)?;
        let row =
            self.banks[bank as usize]
                .open_row
                .take()
                .ok_or_else(|| DramError::IllegalCommand {
                    reason: format!("precharge of bank {bank} with no open row"),
                })?;
        let required = physics::t_ras_required_ns(self.vpp);
        if elapsed_since_act_ns < required {
            let penalty = (elapsed_since_act_ns / required).clamp(0.1, 1.0);
            if let Some(state) = self.banks[bank as usize].rows.get_mut(&row) {
                state.charge_penalty = penalty;
            }
        }
        Ok(())
    }

    /// Executes `count` activate–precharge cycles on `row` with the given
    /// cycle period — the hammering workhorse. Equivalent to `count` calls of
    /// [`DramModule::activate`]/[`DramModule::precharge`] with full `t_RAS`,
    /// but O(neighbors) instead of O(count). Advances the device clock by
    /// `count × period_ns`.
    ///
    /// # Errors
    ///
    /// Fails on bad addresses or if the bank has an open row.
    pub fn hammer(
        &mut self,
        bank: u32,
        row: u32,
        count: u64,
        period_ns: f64,
    ) -> Result<(), DramError> {
        self.geometry.check_bank(bank)?;
        self.geometry.check_row(row)?;
        if let Some(open) = self.banks[bank as usize].open_row {
            return Err(DramError::IllegalCommand {
                reason: format!("hammering bank {bank} while row {open} is open"),
            });
        }
        self.disturb_neighbors(bank, row, count as f64);
        self.trr.record_activations(row, count);
        // The aggressor row itself is refreshed by its own activations.
        self.materialize_and_restore(bank, row);
        self.clock_ns += count as f64 * period_ns.max(0.0);
        Ok(())
    }

    /// Issues a REF command: refreshes every tracked row and lets the TRR
    /// engine refresh the neighbors of sampled aggressors.
    ///
    /// The paper's methodology never calls this during tests — that is
    /// exactly how it disables TRR.
    pub fn refresh(&mut self) {
        let banks = self.geometry.banks;
        // TRR first: neighbors of sampled aggressors.
        let targets = self.trr.take_refresh_targets();
        for aggressor in targets {
            if aggressor < self.geometry.rows_per_bank {
                let (below, above) = self.mapping.physical_neighbors(aggressor);
                for victim in [below, above].into_iter().flatten() {
                    for bank in 0..banks {
                        if self.banks[bank as usize].rows.contains_key(&victim) {
                            self.materialize_and_restore(bank, victim);
                        }
                    }
                }
            }
        }
        // Regular refresh of all tracked rows.
        for bank in 0..banks {
            let rows: Vec<u32> = self.banks[bank as usize].rows.keys().copied().collect();
            for row in rows {
                self.materialize_and_restore(bank, row);
            }
        }
    }

    /// Convenience: activate + write every column + precharge, with nominal
    /// timings. This is `initialize_row` in the paper's Alg. 1.
    ///
    /// # Errors
    ///
    /// Fails on bad addresses, an already-open bank, or a data length
    /// mismatch.
    pub fn write_row(&mut self, bank: u32, row: u32, data: &[u64]) -> Result<(), DramError> {
        if data.len() != self.geometry.columns_per_row as usize {
            return Err(DramError::AddressOutOfRange {
                what: format!(
                    "row data has {} words, geometry needs {}",
                    data.len(),
                    self.geometry.columns_per_row
                ),
            });
        }
        self.activate(bank, row)?;
        for (column, &value) in data.iter().enumerate() {
            self.write(bank, column as u32, value)?;
        }
        self.advance_ns(timing::NOMINAL_T_RAS_NS);
        self.precharge(bank, timing::NOMINAL_T_RAS_NS)?;
        self.advance_ns(timing::NOMINAL_T_RP_NS);
        Ok(())
    }

    /// Convenience: activate + read every column + precharge with the given
    /// ACT→RD delay.
    ///
    /// # Errors
    ///
    /// Fails on bad addresses or an already-open bank.
    pub fn read_row(&mut self, bank: u32, row: u32, t_rcd_ns: f64) -> Result<Vec<u64>, DramError> {
        self.activate(bank, row)?;
        self.advance_ns(t_rcd_ns);
        let mut out = Vec::with_capacity(self.geometry.columns_per_row as usize);
        for column in 0..self.geometry.columns_per_row {
            out.push(self.read(bank, column, t_rcd_ns)?);
        }
        let open_time = t_rcd_ns.max(timing::NOMINAL_T_RAS_NS);
        self.advance_ns(open_time - t_rcd_ns);
        self.precharge(bank, open_time)?;
        self.advance_ns(timing::NOMINAL_T_RP_NS);
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Test oracle — model introspection for validation, not methodology.
    // ------------------------------------------------------------------

    /// Ground-truth `HC_first` of a row's weakest cell at nominal `V_PP`.
    ///
    /// This reads the generative model directly; the study methodology must
    /// instead *measure* it through the device interface. Exposed for
    /// validation tests and experiment ground truth.
    pub fn oracle_hc_first_nominal(&mut self, bank: u32, row: u32) -> f64 {
        let phys = self.mapping.logical_to_physical(row);
        self.params_for(bank, phys).ln_hc_first.exp()
    }

    /// Ground-truth normalized `HC_first` multiplier of a row at `vpp`.
    pub fn oracle_hc_multiplier(&mut self, bank: u32, row: u32, vpp: f64) -> f64 {
        let phys = self.mapping.logical_to_physical(row);
        let coeffs = self.params_for(bank, phys).coeffs;
        physics::hc_multiplier(vpp, &coeffs)
    }

    /// Ground-truth required `t_RCD` of a row at `vpp` (ns), excluding
    /// per-cell jitter.
    pub fn oracle_t_rcd_required(&mut self, bank: u32, row: u32, vpp: f64) -> f64 {
        let phys = self.mapping.logical_to_physical(row);
        let base = self.params_for(bank, phys).trcd_base_ns;
        base + physics::t_rcd_required_ns(vpp, &self.spec.trcd) - self.spec.trcd.base_ns
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn row_params_key(&self, bank: u32, phys: u32) -> (u32, u32) {
        (bank, phys)
    }

    /// Cycle-to-cycle measurement noise: a multiplicative factor near 1,
    /// drawn from an advancing deterministic stream. Real devices show
    /// run-to-run variation (the paper quantifies it via the coefficient of
    /// variation in §4.6); without this term, repeated identical experiments
    /// on the model would be bit-identical and the CV analysis vacuous.
    fn next_noise(&mut self, sigma: f64) -> f64 {
        self.noise_seq += 1;
        (1.0 + sigma * hash::standard_normal(hash::combine(self.noise_seed, self.noise_seq)))
            .max(0.5)
    }

    /// Rebases the cycle-to-cycle measurement-noise stream onto `stream_seed`
    /// and restarts it from the beginning.
    ///
    /// Per-cell physics (thresholds, retention times, orientations) are
    /// untouched — the module remains the same specimen. Only the run-to-run
    /// noise becomes a pure function of `stream_seed` and the subsequent
    /// operation sequence instead of the module's full history. The parallel
    /// execution engine calls this with a seed derived from
    /// `(seed, module, bank, chunk)` (see `hash::chunk_seed`) so that sweep
    /// results are independent of worker count and scheduling.
    pub fn reseed_noise(&mut self, stream_seed: u64) {
        self.noise_seed = stream_seed;
        self.noise_seq = 0;
    }

    fn params_for(&mut self, bank: u32, phys: u32) -> &RowParams {
        let key = self.row_params_key(bank, phys);
        if !self.row_params.contains_key(&key) {
            let params = self.derive_row_params(bank, phys);
            self.row_params.insert(key, params);
        }
        self.row_params.get(&key).expect("just inserted")
    }

    fn derive_row_params(&self, bank: u32, phys: u32) -> RowParams {
        let spec = &self.spec;
        let profile = &self.profile;
        let rs = hash::row_seed(self.seed, bank, phys);
        let sigma = profile.cell_sigma;

        // Row HC_first: module minimum × exp(Exponential(eta_mean)).
        let eta = -self.eta_mean * hash::uniform01(hash::combine(rs, SALT_ROW)).max(1e-12).ln();
        let ln_hc_first = spec.hc_first_nominal.ln() + eta;
        let mu_ln = ln_hc_first + self.z_n * sigma;

        // Voltage response: target multiplier = module target × population
        // uplift × vendor spread, clamped to the vendor's Fig. 6 range;
        // margin and mechanism split drawn from the vendor profile;
        // coefficients solved to realize the target exactly at V_PPmin.
        //
        // The uplift reconciles two paper-reported statistics: Table 3's
        // module values are worst-case (the *minimum* HC_first across rows at
        // each voltage), while §5's +7.4 % / −15.2 % means are per-row
        // averages — the typical row responds more strongly than the ratio of
        // the worst-case values suggests.
        const ROW_POPULATION_UPLIFT: f64 = 1.05;
        let spread = (profile.row_multiplier_sigma
            * hash::standard_normal(hash::combine(rs, SALT_ROW ^ 0xA)))
        .exp();
        let (lo, hi) = profile.multiplier_range;
        let target = (spec.hc_multiplier_target() * ROW_POPULATION_UPLIFT * spread).clamp(lo, hi);
        let margin = hash::uniform(
            hash::combine(rs, SALT_ROW ^ 0xB),
            profile.margin_range.0,
            profile.margin_range.1,
        );
        let dq_share = hash::uniform(
            hash::combine(rs, SALT_ROW ^ 0xC),
            profile.dq_share_range.0,
            profile.dq_share_range.1,
        );
        let coeffs = physics::solve_coeffs(target, spec.vpp_min, margin, dq_share);

        // Activation latency: module base with mild, bounded per-row
        // variation.
        let trcd_base_ns =
            spec.trcd.base_ns + hash::uniform(hash::combine(rs, SALT_TRCD), -0.2, 0.2);

        // Retention weak clusters (Fig. 11): row membership and word choice.
        let pick_words = |clusters: &[vendor::WeakCluster], salt: u64| -> Vec<u32> {
            let mut words = Vec::new();
            let mut acc = 0.0;
            let u = hash::uniform01(hash::combine(rs, SALT_CLUSTER ^ salt));
            for (ci, cluster) in clusters.iter().enumerate() {
                acc += cluster.row_fraction;
                if u < acc {
                    // Arithmetic-progression sampling with an odd stride over
                    // the power-of-two column count: distinct by construction,
                    // so an n-word cluster really has n erroneous words
                    // (Fig. 11 plots these counts exactly).
                    let columns = self.geometry.columns_per_row;
                    let n = cluster.words.min(columns);
                    let h = hash::splitmix64(hash::combine(
                        rs,
                        SALT_CLUSTER ^ salt ^ ((ci as u64) << 32),
                    ));
                    let base = (h % columns as u64) as u32;
                    let stride = ((h >> 32) as u32 | 1) % columns.max(1);
                    let stride = stride.max(1) | 1;
                    for w in 0..n {
                        words.push((base.wrapping_add(w.wrapping_mul(stride))) % columns);
                    }
                    break;
                }
            }
            words.sort_unstable();
            words.dedup();
            words
        };
        let cluster64_words = pick_words(&spec.cluster64, 0x64);
        let cluster128_words = pick_words(&profile.cluster128, 0x128);

        RowParams {
            ln_hc_first,
            mu_ln,
            sigma,
            coeffs,
            trcd_base_ns,
            cluster64_words,
            cluster128_words,
        }
    }

    /// Accumulates disturbance on the physical neighbors of an activated row.
    fn disturb_neighbors(&mut self, bank: u32, row: u32, count: f64) {
        counter_add!("dram_disturb_events", 1);
        let count = count * self.next_noise(0.025);
        let phys = self.mapping.logical_to_physical(row);
        let rows = self.geometry.rows_per_bank;
        // Each victim tracks which side the aggressor activity came from so
        // the two-sided synergy term can be evaluated at materialization.
        // From a victim at phys v, an aggressor at v−1 or v−2 is "below".
        let contributions = [
            (phys.wrapping_sub(1), 1.0, false), // victim below the aggressor → aggressor is its above-neighbor
            (phys + 1, 1.0, true),
            (phys.wrapping_sub(2), 2.0 * DIST2_WEIGHT, false),
            (phys + 2, 2.0 * DIST2_WEIGHT, true),
        ];
        for (victim_phys, weight, aggressor_is_below) in contributions {
            if victim_phys >= rows {
                continue;
            }
            let victim = self.mapping.physical_to_logical(victim_phys);
            if let Some(state) = self.banks[bank as usize].rows.get_mut(&victim) {
                if aggressor_is_below {
                    state.disturb_below += weight * count;
                } else {
                    state.disturb_above += weight * count;
                }
            }
        }
    }

    /// Converts a row's accumulated disturbance and elapsed retention time
    /// into materialized bit flips, then restores the row.
    fn materialize_and_restore(&mut self, bank: u32, row: u32) {
        self.ensure_row(bank, row);
        let phys = self.mapping.logical_to_physical(row);
        let clock = self.clock_ns;
        let vpp = self.vpp;
        let temp = self.temp_c;
        let retention = self.profile.retention;
        let columns = self.geometry.columns_per_row;
        let params = self.params_for(bank, phys).clone();

        // Take the row state out so flip computation can borrow `self`
        // immutably.
        let mut state = self.banks[bank as usize]
            .rows
            .remove(&row)
            .expect("ensured");
        let charge_penalty = state.charge_penalty;
        let (lo, hi) = (state.disturb_below, state.disturb_above);
        let disturb = (0.5 * (lo + hi) + TWO_SIDED_KAPPA * lo.min(hi)) / (1.0 + TWO_SIDED_KAPPA);
        let elapsed_s = ((clock - state.restored_at_ns) * 1e-9).max(0.0);

        // --- RowHammer flip probabilities per pattern class -------------
        // A cell flips when its threshold (nominal lognormal x voltage
        // multiplier x pattern factor) is at or below the accumulated
        // disturbance; per cell this reduces to one hash + compare against
        // a per-class probability cutoff.
        let mut p_hammer = [0.0f64; 2]; // [aligned horizontal, anti-aligned]
        if disturb > 0.0 {
            let multiplier = physics::hc_multiplier(vpp, &params.coeffs) * charge_penalty.powf(0.5);
            let ln_d = disturb.ln();
            for (class, factor) in [(0usize, 1.0f64), (1usize, 1.25f64)] {
                let ln_thresh = params.mu_ln + multiplier.ln() + factor.ln();
                p_hammer[class] = hash::normal_cdf((ln_d - ln_thresh) / params.sigma);
            }
        }

        // --- Retention flip probability ---------------------------------
        let mut p_ret = 0.0f64;
        let mut cluster_relevant = false;
        if elapsed_s > 0.0 {
            let scale = retention.temperature_scale(temp)
                * retention.vpp_scale(vpp)
                * charge_penalty.powi(2);
            let adj = elapsed_s * self.next_noise(0.04) / scale.max(1e-12);
            p_ret = hash::normal_cdf((adj.ln() - retention.mu_ln_s) / retention.sigma_ln);
            if p_ret < 1e-12 {
                p_ret = 0.0;
            }
            // Weak clusters live in the tens-of-ms band at 80 degC; at lower
            // temperatures and nominal V_PP they scale out of reach.
            let min_cluster_s = 0.03 * retention.temperature_scale(temp) * retention.vpp_scale(vpp);
            cluster_relevant = (!params.cluster64_words.is_empty()
                || !params.cluster128_words.is_empty())
                && elapsed_s >= min_cluster_s;
        }

        let rseed = hash::row_seed(self.seed, bank, phys);
        let hammer_possible = p_hammer[1] * (columns as f64) * 64.0 > 1e-4;
        // Flip attribution for the metrics registry: tallied locally (plain
        // integer adds), flushed once per materialization. Pure observation —
        // nothing below reads these.
        let mut n_hammer = 0u64;
        let mut n_ret = 0u64;
        let mut n_cluster = 0u64;
        if hammer_possible || p_ret > 0.0 {
            for word in 0..columns {
                let current = state.data[word as usize];
                let mut flips = 0u64;
                for bit in 0..64u32 {
                    let cell = word * 64 + bit;
                    let cseed = hash::cell_seed(rseed, cell);
                    let stored = (current >> bit) & 1;
                    // Orientation: alternating true/anti cells, with a small
                    // hash-selected exception population.
                    let mut charged_polarity = ((bit ^ phys) & 1) as u64;
                    if hash::uniform01(hash::combine(cseed, SALT_ORI)) < 0.05 {
                        charged_polarity ^= 1;
                    }
                    let is_charged = stored == charged_polarity;
                    if !is_charged {
                        continue; // only charged cells lose charge
                    }

                    // RowHammer flips.
                    if hammer_possible {
                        // Horizontal-coupling class: neighbors storing the
                        // opposite value couple hardest; a per-cell preference
                        // bit occasionally inverts that.
                        let left = if bit > 0 {
                            (current >> (bit - 1)) & 1
                        } else {
                            stored ^ 1
                        };
                        let right = if bit < 63 {
                            (current >> (bit + 1)) & 1
                        } else {
                            stored ^ 1
                        };
                        let mut aligned = left != stored && right != stored;
                        if hash::uniform01(hash::combine(cseed, SALT_PREF)) < 0.10 {
                            aligned = !aligned;
                        }
                        let p = if aligned { p_hammer[0] } else { p_hammer[1] };
                        if p > 0.0 && hash::uniform01(hash::combine(cseed, SALT_HC)) < p {
                            flips |= 1 << bit;
                            n_hammer += 1;
                            continue;
                        }
                    }

                    // Retention flips.
                    if p_ret > 0.0 && hash::uniform01(hash::combine(cseed, SALT_RET)) < p_ret {
                        flips |= 1 << bit;
                        n_ret += 1;
                    }
                }
                if cluster_relevant {
                    let cluster = self.cluster_flips(
                        &params,
                        rseed,
                        phys,
                        word,
                        current,
                        elapsed_s,
                        temp,
                        vpp,
                        charge_penalty,
                    );
                    n_cluster += u64::from((cluster & !flips).count_ones());
                    flips |= cluster;
                }
                state.data[word as usize] ^= flips;
            }
        } else if cluster_relevant {
            let words: Vec<u32> = params
                .cluster64_words
                .iter()
                .chain(params.cluster128_words.iter())
                .copied()
                .collect();
            for word in words {
                let current = state.data[word as usize];
                let flips = self.cluster_flips(
                    &params,
                    rseed,
                    phys,
                    word,
                    current,
                    elapsed_s,
                    temp,
                    vpp,
                    charge_penalty,
                );
                n_cluster += u64::from(flips.count_ones());
                state.data[word as usize] ^= flips;
            }
        }
        if n_hammer + n_ret + n_cluster > 0 {
            counter_add!("dram_flips_hammer", n_hammer);
            counter_add!("dram_flips_retention", n_ret);
            counter_add!("dram_flips_cluster", n_cluster);
        }

        // Restore and reinsert.
        state.restored_at_ns = clock;
        state.disturb_below = 0.0;
        state.disturb_above = 0.0;
        state.charge_penalty = 1.0;
        self.banks[bank as usize].rows.insert(row, state);
    }

    /// Flips contributed by this word's weak-cluster cell, if any.
    #[allow(clippy::too_many_arguments)]
    fn cluster_flips(
        &self,
        params: &RowParams,
        rseed: u64,
        phys: u32,
        word: u32,
        current: u64,
        elapsed_s: f64,
        temp: f64,
        vpp: f64,
        charge_penalty: f64,
    ) -> u64 {
        let retention = &self.profile.retention;
        let scale =
            retention.temperature_scale(temp) * retention.vpp_scale(vpp) * charge_penalty.powi(2);
        let scale_min = retention.vpp_scale(self.spec.vpp_min);
        let mut flips = 0u64;
        for (band_s, words) in [
            (0.064, &params.cluster64_words),
            (0.128, &params.cluster128_words),
        ] {
            if !words.contains(&word) {
                continue;
            }
            let wseed = hash::combine(rseed, SALT_CLUSTER ^ word as u64);
            let bit = (hash::splitmix64(wseed) % 64) as u32;
            // Base retention at 80 °C/nominal V_PP chosen so the cell fails
            // inside (band/2, band] at V_PPmin but survives `band` at
            // nominal V_PP.
            let base_s = band_s / scale_min.max(1e-9)
                * hash::uniform(hash::combine(wseed, 0xF00D), 0.76, 0.98);
            let effective = base_s * scale;
            if elapsed_s >= effective {
                // The weak cell shares the array's true-/anti-cell layout, so
                // the per-row worst-case checkerboard phase charges it — a
                // flip occurs when it stores its charged polarity.
                let stored = (current >> bit) & 1;
                let polarity = ((bit ^ phys) & 1) as u64;
                if stored == polarity {
                    flips |= 1 << bit;
                }
            }
        }
        flips
    }

    /// Transient read corruption when the used `t_RCD` is below the row's
    /// requirement at the current `V_PP`.
    fn corrupt_for_trcd(
        &mut self,
        bank: u32,
        row: u32,
        column: u32,
        stored: u64,
        t_rcd_used_ns: f64,
    ) -> u64 {
        let phys = self.mapping.logical_to_physical(row);
        let jitter = self.profile.trcd_jitter_ns;
        let (trcd_base, module_base) = {
            let params = self.params_for(bank, phys);
            (params.trcd_base_ns, self.spec.trcd.base_ns)
        };
        let required =
            trcd_base + physics::t_rcd_required_ns(self.vpp, &self.spec.trcd) - module_base;
        // Per-cell requirements are *bounded*: row requirement ± jitter. A
        // read at or beyond `required + jitter` is reliable by construction,
        // which is what lets §6.1's "works at 24 ns / 15 ns" statements be
        // crisp rather than probabilistic.
        let shortfall = required - t_rcd_used_ns;
        if shortfall <= -jitter {
            return stored;
        }
        let p = ((shortfall + jitter) / (2.0 * jitter)).clamp(0.0, 1.0);
        let rseed = hash::row_seed(self.seed, bank, phys);
        let mut corrupted = stored;
        for bit in 0..64u32 {
            let cseed = hash::cell_seed(rseed, column * 64 + bit);
            if hash::uniform01(hash::combine(cseed, SALT_TRCD)) < p {
                corrupted ^= 1 << bit;
            }
        }
        if corrupted != stored {
            counter_add!("dram_flips_trcd", (corrupted ^ stored).count_ones());
            counter_add!("dram_trcd_corrupt_reads", 1);
        }
        corrupted
    }

    /// Deterministic power-on content of an untracked row's word.
    fn uninitialized_word(&self, bank: u32, row: u32, column: u32) -> u64 {
        let phys = self.mapping.logical_to_physical(row);
        hash::splitmix64(hash::combine(
            hash::row_seed(self.seed, bank, phys),
            SALT_INIT ^ column as u64,
        ))
    }

    fn ensure_row(&mut self, bank: u32, row: u32) {
        let columns = self.geometry.columns_per_row;
        let clock = self.clock_ns;
        let seed = self.seed;
        let phys = self.mapping.logical_to_physical(row);
        self.banks[bank as usize]
            .rows
            .entry(row)
            .or_insert_with(|| {
                let data = (0..columns)
                    .map(|c| {
                        hash::splitmix64(hash::combine(
                            hash::row_seed(seed, bank, phys),
                            SALT_INIT ^ c as u64,
                        ))
                    })
                    .collect();
                RowState {
                    data,
                    written: None,
                    restored_at_ns: clock,
                    disturb_below: 0.0,
                    disturb_above: 0.0,
                    charge_penalty: 1.0,
                }
            });
    }
}

/// Calibrates the mean of the exponential per-row `HC_first` spread so the
/// expected module BER at HC = 300 K and nominal `V_PP` matches the Table 3
/// record.
fn calibrate_eta_mean(spec: &ModuleSpec, sigma: f64, z_n: f64) -> f64 {
    let a = (300_000.0f64.ln() - spec.hc_first_nominal.ln()) / sigma - z_n;
    let target = spec.ber_nominal;
    let expected_ber = |mean: f64| -> f64 {
        // E_u[Φ(a − η/σ)], η = −mean·ln(u), over a quadrature grid.
        let n = 256;
        let mut acc = 0.0;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            let eta = -mean * u.ln();
            acc += hash::normal_cdf(a - eta / sigma);
        }
        acc / n as f64
    };
    // Φ(a) is the zero-spread BER; if the target exceeds it, no spread is
    // the best we can do.
    if expected_ber(0.0) <= target {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0f64, 8.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if expected_ber(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;
    use crate::registry::{self, ModuleId};

    fn small_module(id: ModuleId, seed: u64) -> DramModule {
        DramModule::with_geometry(registry::spec(id), seed, Geometry::small_test()).unwrap()
    }

    fn pattern_row(module: &DramModule, word: u64) -> Vec<u64> {
        vec![word; module.geometry().columns_per_row as usize]
    }

    #[test]
    fn set_vpp_enforces_limits() {
        let mut m = small_module(ModuleId::A0, 1);
        assert!(m.set_vpp(2.5).is_ok());
        assert!(m.set_vpp(1.4).is_ok()); // A0's V_PPmin
        assert!(matches!(
            m.set_vpp(1.3),
            Err(DramError::CommunicationLost { .. })
        ));
        assert!(matches!(
            m.set_vpp(3.5),
            Err(DramError::VoltageOutOfRange { .. })
        ));
        assert!(matches!(
            m.set_vpp(0.2),
            Err(DramError::VoltageOutOfRange { .. })
        ));
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut m = small_module(ModuleId::B3, 7);
        let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
        m.write_row(0, 10, &data).unwrap();
        let back = m.read_row(0, 10, 13.5).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn protocol_violations_are_rejected() {
        let mut m = small_module(ModuleId::A0, 1);
        assert!(matches!(
            m.read(0, 0, 13.5),
            Err(DramError::IllegalCommand { .. })
        ));
        m.activate(0, 5).unwrap();
        assert!(matches!(
            m.activate(0, 6),
            Err(DramError::IllegalCommand { .. })
        ));
        m.precharge(0, 35.0).unwrap();
        assert!(matches!(
            m.precharge(0, 35.0),
            Err(DramError::IllegalCommand { .. })
        ));
        assert!(matches!(
            m.activate(0, 1 << 30),
            Err(DramError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn hammering_flips_bits_in_neighbors() {
        let mut m = small_module(ModuleId::B0, 3); // weakest module: HC_first 7.9K
        let victim = 100;
        let (below, above) = m.mapping().physical_neighbors(victim);
        let (below, above) = (below.unwrap(), above.unwrap());
        // Use the victim's charged-aligned checkerboard for worst case.
        let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
        let inv = pattern_row(&m, !0xAAAA_AAAA_AAAA_AAAAu64);
        m.write_row(0, victim, &data).unwrap();
        m.write_row(0, below, &inv).unwrap();
        m.write_row(0, above, &inv).unwrap();
        // Double-sided hammer at 300K per aggressor.
        m.hammer(0, below, 300_000, 48.5).unwrap();
        m.hammer(0, above, 300_000, 48.5).unwrap();
        let back = m.read_row(0, victim, 13.5).unwrap();
        let flips: u32 = back
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!(flips > 0, "expected RowHammer flips on the weakest module");
        // Determinism: the same module re-instantiated flips the same cells.
        let mut m2 = small_module(ModuleId::B0, 3);
        m2.write_row(0, victim, &data).unwrap();
        m2.write_row(0, below, &inv).unwrap();
        m2.write_row(0, above, &inv).unwrap();
        m2.hammer(0, below, 300_000, 48.5).unwrap();
        m2.hammer(0, above, 300_000, 48.5).unwrap();
        assert_eq!(m2.read_row(0, victim, 13.5).unwrap(), back);
    }

    #[test]
    fn no_flips_without_hammering() {
        let mut m = small_module(ModuleId::B0, 3);
        let data = pattern_row(&m, 0x5555_5555_5555_5555);
        m.write_row(0, 50, &data).unwrap();
        // Immediately read back: no disturbance, negligible retention.
        let back = m.read_row(0, 50, 13.5).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn rewriting_a_row_clears_accumulated_disturbance() {
        let mut m = small_module(ModuleId::B0, 3);
        let victim = 100;
        let (below, above) = m.mapping().physical_neighbors(victim);
        let (below, above) = (below.unwrap(), above.unwrap());
        let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
        m.write_row(0, victim, &data).unwrap();
        m.write_row(0, below, &data).unwrap();
        m.write_row(0, above, &data).unwrap();
        m.hammer(0, below, 150_000, 48.5).unwrap();
        m.hammer(0, above, 150_000, 48.5).unwrap();
        // Re-initialize the victim: restores charge and clears disturbance.
        m.write_row(0, victim, &data).unwrap();
        m.hammer(0, below, 1_000, 48.5).unwrap();
        m.hammer(0, above, 1_000, 48.5).unwrap();
        let back = m.read_row(0, victim, 13.5).unwrap();
        assert_eq!(back, data, "1K hammers after re-init must not flip");
    }

    #[test]
    fn more_hammers_flip_more_cells() {
        let mut total = [0u32; 2];
        for (i, hc) in [50_000u64, 300_000].into_iter().enumerate() {
            let mut m = small_module(ModuleId::B0, 11);
            let victim = 200;
            let (below, above) = m.mapping().physical_neighbors(victim);
            let (below, above) = (below.unwrap(), above.unwrap());
            let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
            m.write_row(0, victim, &data).unwrap();
            m.write_row(0, below, &data).unwrap();
            m.write_row(0, above, &data).unwrap();
            m.hammer(0, below, hc, 48.5).unwrap();
            m.hammer(0, above, hc, 48.5).unwrap();
            let back = m.read_row(0, victim, 13.5).unwrap();
            total[i] = back
                .iter()
                .zip(&data)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
        }
        assert!(
            total[1] > total[0],
            "300K hammers ({}) must flip more than 50K ({})",
            total[1],
            total[0]
        );
    }

    #[test]
    fn reduced_vpp_reduces_hammer_flips_on_typical_module() {
        // B3 is the paper's strongest responder: BER at V_PPmin is 0.40× the
        // nominal BER.
        let mut flips = Vec::new();
        for vpp in [2.5, 1.6] {
            let mut m = small_module(ModuleId::B3, 5);
            m.set_vpp(vpp).unwrap();
            let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
            let mut count = 0u32;
            for victim in (10..200u32).step_by(7) {
                let (below, above) = m.mapping().physical_neighbors(victim);
                let (below, above) = (below.unwrap(), above.unwrap());
                m.write_row(0, victim, &data).unwrap();
                m.write_row(0, below, &data).unwrap();
                m.write_row(0, above, &data).unwrap();
                m.hammer(0, below, 300_000, 48.5).unwrap();
                m.hammer(0, above, 300_000, 48.5).unwrap();
                let back = m.read_row(0, victim, 13.5).unwrap();
                count += back
                    .iter()
                    .zip(&data)
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum::<u32>();
            }
            flips.push(count);
        }
        assert!(
            flips[1] < flips[0],
            "B3 flips at 1.6 V ({}) must be below 2.5 V ({})",
            flips[1],
            flips[0]
        );
    }

    #[test]
    fn retention_flips_appear_after_long_waits_at_80c() {
        let mut m = small_module(ModuleId::C2, 9);
        m.set_temperature_c(80.0);
        let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
        let mut flips_by_wait = Vec::new();
        for wait_s in [0.064f64, 16.0] {
            let mut total = 0u32;
            for row in (0..160u32).step_by(5) {
                m.write_row(0, row, &data).unwrap();
            }
            m.advance_ns(wait_s * 1e9);
            for row in (0..160u32).step_by(5) {
                let back = m.read_row(0, row, 13.5).unwrap();
                total += back
                    .iter()
                    .zip(&data)
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum::<u32>();
            }
            flips_by_wait.push(total);
        }
        assert_eq!(flips_by_wait[0], 0, "no retention failures at 64 ms");
        assert!(
            flips_by_wait[1] > 0,
            "expected retention failures after 16 s at 80 °C"
        );
    }

    #[test]
    fn retention_is_safe_during_rowhammer_windows_at_50c() {
        let mut m = small_module(ModuleId::C2, 9);
        m.set_temperature_c(50.0);
        let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
        m.write_row(0, 77, &data).unwrap();
        m.advance_ns(30e6); // 30 ms: the paper's test-window bound
        let back = m.read_row(0, 77, 13.5).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn trcd_violation_corrupts_reads_transiently() {
        let mut m = small_module(ModuleId::A0, 1);
        let data = pattern_row(&m, 0x0F0F_0F0F_0F0F_0F0F);
        m.write_row(0, 30, &data).unwrap();
        // Far below any plausible requirement: reads corrupt.
        let bad = m.read_row(0, 30, 3.0).unwrap();
        let flips: u32 = bad
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!(flips > 0, "t_RCD = 3 ns must corrupt");
        // But the stored data is untouched: a nominal read is clean.
        let good = m.read_row(0, 30, 13.5).unwrap();
        assert_eq!(good, data);
    }

    #[test]
    fn trcd_requirement_rises_at_low_vpp_for_a0() {
        let mut m = small_module(ModuleId::A0, 1);
        let data = pattern_row(&m, 0x0F0F_0F0F_0F0F_0F0F);
        m.write_row(0, 40, &data).unwrap();
        // At nominal V_PP, 13.5 ns is reliable.
        assert_eq!(m.read_row(0, 40, 13.5).unwrap(), data);
        // At V_PPmin = 1.4 V, A0 needs ~24 ns: 13.5 ns now corrupts...
        m.set_vpp(1.4).unwrap();
        let bad = m.read_row(0, 40, 13.5).unwrap();
        assert_ne!(bad, data, "nominal t_RCD must fail at V_PPmin on A0");
        // ...and 24 ns is reliable again.
        assert_eq!(m.read_row(0, 40, 24.0).unwrap(), data);
    }

    #[test]
    fn oracle_matches_table3_direction() {
        let mut m = small_module(ModuleId::B3, 77);
        // Average oracle multiplier at V_PPmin across rows should be near the
        // module target of 1.271.
        let mut acc = 0.0;
        let n = 200;
        for row in 0..n {
            acc += m.oracle_hc_multiplier(0, row, 1.6);
        }
        let mean = acc / n as f64;
        assert!(
            (mean - 1.271).abs() < 0.12,
            "mean oracle multiplier {mean} vs target 1.271"
        );
    }

    #[test]
    fn hc_first_oracle_min_near_module_spec() {
        let mut m = small_module(ModuleId::B0, 123);
        let min = (0..512u32)
            .map(|r| m.oracle_hc_first_nominal(0, r))
            .fold(f64::INFINITY, f64::min);
        // 512 rows only sample the spread partially; the minimum must sit
        // within a small factor of the module's 7.9K record.
        assert!(min >= 7.9e3 * 0.99, "min {min} below module record");
        assert!(min < 7.9e3 * 2.5, "min {min} far above module record");
    }

    #[test]
    fn refresh_resets_retention_clock() {
        let mut m = small_module(ModuleId::C2, 9);
        m.set_temperature_c(80.0);
        let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
        for row in 0..40u32 {
            m.write_row(0, row, &data).unwrap();
        }
        // Refresh every 4 s for 16 s total: refreshes keep rows alive where a
        // single 16 s wait would flip (statistically).
        for _ in 0..4 {
            m.advance_ns(4.0 * 1e9);
            m.refresh();
        }
        let mut flips_refreshed = 0u32;
        for row in 0..40u32 {
            let back = m.read_row(0, row, 13.5).unwrap();
            flips_refreshed += back
                .iter()
                .zip(&data)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum::<u32>();
        }
        // Same wait without refresh.
        let mut m2 = small_module(ModuleId::C2, 9);
        m2.set_temperature_c(80.0);
        for row in 0..40u32 {
            m2.write_row(0, row, &data).unwrap();
        }
        m2.advance_ns(16.0 * 1e9);
        let mut flips_unrefreshed = 0u32;
        for row in 0..40u32 {
            let back = m2.read_row(0, row, 13.5).unwrap();
            flips_unrefreshed += back
                .iter()
                .zip(&data)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum::<u32>();
        }
        assert!(
            flips_refreshed < flips_unrefreshed,
            "refreshed {flips_refreshed} vs unrefreshed {flips_unrefreshed}"
        );
    }

    #[test]
    fn reseed_noise_decouples_results_from_history() {
        // Two modules of the same specimen, one with extra prior activity.
        // After rebasing both noise streams onto the same chunk seed, the
        // same measurement sequence must produce identical readouts even
        // though their histories differ.
        let run = |prior_hammers: u64| -> Vec<u64> {
            let mut m = small_module(ModuleId::B0, 3);
            let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
            let inv = pattern_row(&m, !0xAAAA_AAAA_AAAA_AAAAu64);
            if prior_hammers > 0 {
                m.write_row(0, 40, &data).unwrap();
                m.hammer(0, 41, prior_hammers, 48.5).unwrap();
            }
            m.reseed_noise(crate::hash::chunk_seed(3, 0, 7));
            let victim = 100;
            let (below, above) = m.mapping().physical_neighbors(victim);
            let (below, above) = (below.unwrap(), above.unwrap());
            m.write_row(0, victim, &data).unwrap();
            m.write_row(0, below, &inv).unwrap();
            m.write_row(0, above, &inv).unwrap();
            m.hammer(0, below, 300_000, 48.5).unwrap();
            m.hammer(0, above, 300_000, 48.5).unwrap();
            m.read_row(0, victim, 13.5).unwrap()
        };
        assert_eq!(run(0), run(120_000));
        // Different chunk seeds give a different (still deterministic) run.
        let mut m = small_module(ModuleId::B0, 3);
        m.reseed_noise(crate::hash::chunk_seed(3, 0, 8));
        let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
        let inv = pattern_row(&m, !0xAAAA_AAAA_AAAA_AAAAu64);
        let victim = 100;
        let (below, above) = m.mapping().physical_neighbors(victim);
        let (below, above) = (below.unwrap(), above.unwrap());
        m.write_row(0, victim, &data).unwrap();
        m.write_row(0, below, &inv).unwrap();
        m.write_row(0, above, &inv).unwrap();
        m.hammer(0, below, 300_000, 48.5).unwrap();
        m.hammer(0, above, 300_000, 48.5).unwrap();
        let other = m.read_row(0, victim, 13.5).unwrap();
        assert_ne!(other, run(0), "distinct chunk streams must differ");
    }

    #[test]
    fn uninitialized_rows_read_deterministic_garbage() {
        let mut m1 = small_module(ModuleId::A3, 4);
        let mut m2 = small_module(ModuleId::A3, 4);
        let a = m1.read_row(0, 123, 13.5).unwrap();
        let b = m2.read_row(0, 123, 13.5).unwrap();
        assert_eq!(a, b);
        let mut m3 = small_module(ModuleId::A3, 5);
        let c = m3.read_row(0, 123, 13.5).unwrap();
        assert_ne!(a, c, "different specimen, different power-on content");
    }
}
