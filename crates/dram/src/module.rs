//! The live DRAM device: state machine, cell materialization, and failure
//! injection.
//!
//! A [`DramModule`] is one DIMM instantiated from its Table 3 spec and a
//! seed. It exposes the raw timing-explicit device interface the SoftMC-style
//! infrastructure drives:
//!
//! - [`DramModule::activate`] / [`DramModule::read`] / [`DramModule::write`] /
//!   [`DramModule::precharge`] — the DDR4 protocol, with caller-supplied
//!   timings (reads take the ACT→RD delay actually used; precharge takes the
//!   elapsed row-open time),
//! - [`DramModule::hammer`] — the bulk activate–precharge loop the engine
//!   uses for hammering (semantically a sequence of ACT/PRE pairs),
//! - [`DramModule::refresh`] — REF, which also feeds the in-DRAM TRR engine,
//! - [`DramModule::set_vpp`] — external wordline-voltage control; fails below
//!   the module's `V_PPmin` exactly as real modules stop responding (§4.1).
//!
//! # Failure injection
//!
//! Bit flips are *materialized* when a row is activated: accumulated
//! RowHammer disturbance and elapsed retention time are converted into
//! deterministic per-cell flips, the row's charge is restored, and its
//! disturbance counter resets — matching the physical process, where a row
//! activation latches whatever the cells currently hold and rewrites it.
//! Reads additionally model transient `t_RCD`-violation corruption.

use crate::error::DramError;
use crate::geometry::Geometry;
use crate::hash;
use crate::mapping::AddressMapping;
use crate::ondie_ecc::OnDieEcc;
use crate::physics::{self, DisturbCoeffs};
use crate::registry::ModuleSpec;
use crate::timing;
use crate::trr::{TrrEngine, TrrPolicy};
use crate::vendor::{self, Manufacturer, VendorProfile};
use hammervolt_obs::counter_add;

/// Hash-domain salts so the independent per-cell properties draw from
/// unrelated streams.
const SALT_HC: u64 = 0x11;
const SALT_RET: u64 = 0x22;
const SALT_TRCD: u64 = 0x33;
const SALT_ORI: u64 = 0x44;
const SALT_PREF: u64 = 0x55;
const SALT_ROW: u64 = 0x66;
const SALT_INIT: u64 = 0x77;
const SALT_CLUSTER: u64 = 0x88;
const SALT_NOISE: u64 = 0x99;

/// Disturbance contribution of a distance-2 aggressor relative to distance-1
/// (the paper's double-sided attacks dominate through immediate neighbors).
const DIST2_WEIGHT: f64 = 0.04;

/// Two-sided synergy: alternating activations on *both* neighbors disturb a
/// victim superadditively (both adjacent wordlines toggle against the cell),
/// which is why the double-sided attack is the most effective shape at a
/// fixed activation budget (§4.2). The effective disturbance is
/// `(0.5·(L+R) + κ·min(L,R)) / (1+κ)`, normalized so the calibrated
/// symmetric double-sided case (`L = R = HC`) yields exactly `HC`.
const TWO_SIDED_KAPPA: f64 = 0.35;

/// State of one tracked (ever-written) row.
#[derive(Debug, Clone)]
struct RowState {
    /// Stored data, one `u64` per column.
    data: Vec<u64>,
    /// As-written reference, kept only when on-die ECC is enabled (the
    /// internal code is computed at write time).
    written: Option<Vec<u64>>,
    /// Time of the last charge restoration (write, activate, or refresh).
    restored_at_ns: f64,
    /// Accumulated weighted aggressor activations from the physically-below
    /// side (distance-1 weight 1, distance-2 scaled).
    disturb_below: f64,
    /// Accumulated weighted aggressor activations from the above side.
    disturb_above: f64,
    /// Charge restoration completeness in `(0, 1]`: below 1 when the row was
    /// last closed before `t_RAS_required` elapsed.
    charge_penalty: f64,
}

/// Per-cell property masks, one word per column, derived lazily the first
/// time a row materializes with pending work.
///
/// Cell orientation and horizontal-coupling preference are pure per-cell
/// hash draws; folding them into bitmasks lets the materialization loop
/// skip discharged cells wholesale and test the remaining cells with plain
/// bit probes instead of two hash evaluations each.
#[derive(Debug, Clone)]
struct CellMasks {
    /// Bit `b` of word `w` = the cell's charged polarity.
    polarity: Vec<u64>,
    /// Bit `b` of word `w` = the cell inverts its alignment class.
    pref: Vec<u64>,
}

/// Per-cell uniform draws for one salt, indexed for cutoff queries.
///
/// A cell's flip draw `uniform01(combine(cell_seed(rseed, idx), SALT))` is a
/// pure function of `(row, cell, salt)` — constant across materializations —
/// and the flip decision is `u < p` for a per-materialization cutoff `p`.
/// Grouping the `(u, cell)` pairs by the uniform's binary exponent turns
/// "which cells can flip at cutoff p" into a prefix of this table: every
/// entry in a bucket below `p`'s exponent is `< p`, the bucket holding `p`'s
/// exponent needs the exact per-entry compare, and everything above is
/// `>= p`. The materialization loop then visits O(candidates) cells instead
/// of hashing every charged cell in the row.
#[derive(Debug, Clone)]
struct SaltIndex {
    /// `(uniform, cell index)` pairs grouped by the uniform's biased
    /// exponent, ascending bucket order (entries within a bucket unsorted —
    /// consumers re-check `u < p` exactly).
    entries: Vec<(f64, u32)>,
    /// `entries[bucket_start[e] .. bucket_start[e + 1]]` holds the entries
    /// whose uniform has biased exponent `e`; length 1025.
    bucket_start: Vec<u32>,
}

impl SaltIndex {
    /// Biased-exponent bucket of a uniform in `[0, 1)`.
    #[inline]
    fn bucket(u: f64) -> usize {
        (u.to_bits() >> 52) as usize
    }

    /// Counting-sorts per-cell uniforms into exponent buckets — O(cells),
    /// no comparison sort.
    fn build(uniforms: &[f64]) -> Self {
        let mut bucket_start = vec![0u32; 1025];
        for &u in uniforms {
            bucket_start[Self::bucket(u) + 1] += 1;
        }
        for e in 0..1024 {
            bucket_start[e + 1] += bucket_start[e];
        }
        let mut cursor: Vec<u32> = bucket_start[..1024].to_vec();
        let mut entries = vec![(0.0f64, 0u32); uniforms.len()];
        for (cell, &u) in uniforms.iter().enumerate() {
            let c = &mut cursor[Self::bucket(u)];
            entries[*c as usize] = (u, cell as u32);
            *c += 1;
        }
        SaltIndex {
            entries,
            bucket_start,
        }
    }

    /// A superset of the entries with `u < p`: complete buckets below `p`'s
    /// exponent plus `p`'s own (partial) bucket. Callers re-check `u < p`
    /// per entry, which also keeps the comparison bit-identical to the
    /// original per-cell hash-and-compare.
    #[inline]
    fn candidates(&self, p: f64) -> &[(f64, u32)] {
        if p <= 0.0 {
            return &[];
        }
        let b = ((p.to_bits() >> 52) as usize).min(1023);
        &self.entries[..self.bucket_start[b + 1] as usize]
    }
}

/// Lazily-built flip-draw indexes for a row, one per salt.
#[derive(Debug, Clone)]
struct FlipIndex {
    /// RowHammer draws (`SALT_HC`).
    hc: SaltIndex,
    /// Retention draws (`SALT_RET`).
    ret: SaltIndex,
}

/// Reusable dense scratch for one materialization's flip accumulation.
///
/// Flip decisions read the row's *pre-flip* data (neighbor bits, charge
/// state), so flips found by the candidate scan are staged here and XORed
/// into the row in one deferred pass. `flips` is a one-word-per-column
/// bitmap; `touched` lists the words with staged bits so the apply/reset
/// pass never walks the whole row.
#[derive(Debug, Clone, Default)]
struct FlipScratch {
    flips: Vec<u64>,
    touched: Vec<u32>,
}

/// Cached per-row model parameters, derived from the physical row address.
#[derive(Debug, Clone)]
struct RowParams {
    /// ln of the row's weakest-cell `HC_first` at nominal `V_PP`.
    ln_hc_first: f64,
    /// Log-mean of the per-cell threshold distribution.
    mu_ln: f64,
    /// Log-σ of the per-cell threshold distribution.
    sigma: f64,
    /// Voltage-response coefficients.
    coeffs: DisturbCoeffs,
    /// Required `t_RCD` at nominal `V_PP` for this row (ns).
    trcd_base_ns: f64,
    /// Word indices carrying a 64 ms-window weak cell (Fig. 11a).
    cluster64_words: Vec<u32>,
    /// Word indices carrying a 128 ms-window weak cell (Fig. 11b).
    cluster128_words: Vec<u32>,
    /// Lazily-derived per-cell masks (see [`CellMasks`]).
    masks: Option<CellMasks>,
    /// Lazily-derived flip-draw indexes (see [`SaltIndex`]), built together
    /// with `masks`.
    flip_index: Option<FlipIndex>,
}

/// Sentinel for "no arena slot allocated" in the dense per-bank indexes.
const NO_SLOT: u32 = u32::MAX;

/// One bank: open-row state plus dense, physically-indexed arenas.
///
/// Row state and row parameters live in insertion-ordered arenas
/// (`states`, `params`); `state_index`/`params_index` map a physical row
/// address to its arena slot (`NO_SLOT` when absent), and `tracked` is a
/// bitmap mirroring `state_index` occupancy so bulk passes (refresh) can
/// scan tracked rows in ascending physical order without touching the
/// index vector's cold entries. All per-access paths are O(1) loads with
/// no hashing. The index vectors are sized lazily on first touch so
/// cloning a pristine module (one blueprint instantiation per work chunk)
/// costs nothing for banks the chunk never uses.
#[derive(Debug, Clone, Default)]
struct Bank {
    open_row: Option<u32>,
    /// Physical address of the open row, valid while `open_row` is `Some`.
    open_phys: u32,
    /// Physical row → slot in `states`, or `NO_SLOT`.
    state_index: Vec<u32>,
    /// One bit per physical row: set iff the row has a `states` slot.
    tracked: Vec<u64>,
    /// Row-state arena, insertion order.
    states: Vec<RowState>,
    /// Physical row → slot in `params`, or `NO_SLOT`.
    params_index: Vec<u32>,
    /// Row-parameter arena, insertion order.
    params: Vec<RowParams>,
    /// Physical addresses of the rows in `params`, same order — the
    /// occupancy list that lets [`Bank::reset_touched`] clear `params_index`
    /// in O(derived rows) instead of O(rows per bank).
    params_rows: Vec<u32>,
    /// Materialization staging scratch, reused across calls.
    flip_scratch: FlipScratch,
}

impl Bank {
    /// Sizes the dense indexes on first touch.
    fn ensure_capacity(&mut self, rows: u32) {
        if self.state_index.is_empty() {
            self.state_index = vec![NO_SLOT; rows as usize];
            self.params_index = vec![NO_SLOT; rows as usize];
            self.tracked = vec![0u64; (rows as usize).div_ceil(64)];
        }
    }

    #[inline]
    fn is_tracked(&self, phys: u32) -> bool {
        self.tracked
            .get((phys / 64) as usize)
            .is_some_and(|w| (w >> (phys % 64)) & 1 == 1)
    }

    #[inline]
    fn state_slot(&self, phys: u32) -> Option<usize> {
        match self.state_index.get(phys as usize) {
            Some(&slot) if slot != NO_SLOT => Some(slot as usize),
            _ => None,
        }
    }

    #[inline]
    fn params_slot(&self, phys: u32) -> Option<usize> {
        match self.params_index.get(phys as usize) {
            Some(&slot) if slot != NO_SLOT => Some(slot as usize),
            _ => None,
        }
    }

    /// Clears every materialized row slot in O(touched rows), walking the
    /// `tracked` bitmap instead of the full `state_index`. The row-parameter
    /// arena is kept: parameters are pure per-row hash draws, so a future
    /// touch of the same row re-derives identical values either way and
    /// keeping them only skips recomputation.
    fn reset_touched(&mut self) {
        self.open_row = None;
        for (wi, word) in self.tracked.iter_mut().enumerate() {
            let mut w = *word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                self.state_index[wi * 64 + bit] = NO_SLOT;
                w &= w - 1;
            }
            *word = 0;
        }
        self.states.clear();
        // The row parameters are dropped too, not just the row states. They
        // are pure per-row hash draws, so keeping them would be semantically
        // free — but a pooled module accumulates params for every row it
        // ever touched, and later units then read their few hot rows
        // scattered across that ever-growing arena. Dropping the arena keeps
        // a recycled module's working set exactly one unit wide (measurably
        // faster than both keeping them and fresh-cloning) while the
        // retained `Vec` capacities still spare the allocator churn a fresh
        // clone pays. Re-derivation on next touch is bit-identical.
        for &phys in &self.params_rows {
            self.params_index[phys as usize] = NO_SLOT;
        }
        self.params_rows.clear();
        self.params.clear();
    }
}

/// A live DRAM module calibrated to a Table 3 record.
#[derive(Debug, Clone)]
pub struct DramModule {
    spec: ModuleSpec,
    profile: VendorProfile,
    geometry: Geometry,
    seed: u64,
    vpp: f64,
    temp_c: f64,
    clock_ns: f64,
    mapping: AddressMapping,
    banks: Vec<Bank>,
    trr: TrrEngine,
    /// Calibrated mean of the exponential per-row `HC_first` spread.
    eta_mean: f64,
    /// Base seed of the cycle-to-cycle measurement-noise stream. Defaults to
    /// a specimen-derived value; the parallel execution engine rebases it per
    /// work chunk so results do not depend on global operation order.
    noise_seed: u64,
    /// Monotone sequence number behind the cycle-to-cycle measurement noise.
    noise_seq: u64,
    /// On-die ECC configuration (None for all Table 3 modules, per §4.1).
    ondie_ecc: OnDieEcc,
    /// Words silently corrected by on-die ECC since instantiation.
    ecc_corrections: u64,
    /// −Φ⁻¹(1/cells_per_row): positions the weakest cell of a row.
    z_n: f64,
    /// `physics::t_rcd_required_ns(vpp, spec.trcd)` memoized at the current
    /// `V_PP` — row-independent, so it only changes when the rail moves, not
    /// on every column read.
    trcd_req_at_vpp_ns: f64,
}

impl DramModule {
    /// Builds a module from its spec and specimen seed, calibrating the
    /// per-row spread so the module-average BER at HC = 300 K matches the
    /// Table 3 record.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; returns `Result` for forward
    /// compatibility of the constructor contract.
    pub fn new(spec: ModuleSpec, seed: u64) -> Result<Self, DramError> {
        let geometry = spec.geometry();
        Self::with_geometry(spec, seed, geometry)
    }

    /// Builds a module with an overridden geometry (reduced row counts for
    /// fast tests). Cell-level behaviour is unchanged; only the address
    /// ranges shrink.
    ///
    /// # Errors
    ///
    /// Fails if the geometry has no rows or columns.
    pub fn with_geometry(
        spec: ModuleSpec,
        seed: u64,
        geometry: Geometry,
    ) -> Result<Self, DramError> {
        if geometry.rows_per_bank == 0 || geometry.columns_per_row == 0 || geometry.banks == 0 {
            return Err(DramError::AddressOutOfRange {
                what: "geometry must have at least one bank, row, and column".to_string(),
            });
        }
        let profile = vendor::profile(spec.mfr);
        let cells = geometry.bits_per_row() as f64;
        let z_n = -hash::inverse_normal_cdf(1.0 / cells);
        let eta_mean = calibrate_eta_mean(&spec, profile.cell_sigma, z_n);
        let mapping = AddressMapping::with_repairs(
            profile.scheme,
            geometry.rows_per_bank,
            profile.repairs_per_bank,
            hash::combine(seed, 0xBEEF),
        );
        let trr_policy = match spec.mfr {
            Manufacturer::A => TrrPolicy::Periodic { period: 2048 },
            Manufacturer::B => TrrPolicy::Probabilistic { chance: 1024 },
            Manufacturer::C => TrrPolicy::FrequencyTable { entries: 8 },
        };
        Ok(DramModule {
            profile,
            geometry,
            seed,
            vpp: physics::VPP_NOMINAL,
            temp_c: 50.0,
            clock_ns: 0.0,
            mapping,
            banks: vec![Bank::default(); geometry.banks as usize],
            trr: TrrEngine::new(trr_policy, hash::combine(seed, 0x7272)),
            eta_mean,
            noise_seed: seed ^ SALT_NOISE,
            noise_seq: 0,
            ondie_ecc: OnDieEcc::None,
            ecc_corrections: 0,
            z_n,
            trcd_req_at_vpp_ns: physics::t_rcd_required_ns(physics::VPP_NOMINAL, &spec.trcd),
            spec,
        })
    }

    /// The module's calibration record.
    pub fn spec(&self) -> &ModuleSpec {
        &self.spec
    }

    /// The module's vendor profile.
    pub fn profile(&self) -> &VendorProfile {
        &self.profile
    }

    /// The geometry in effect (may be reduced for tests).
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The internal address mapping. The methodology is expected to *not*
    /// use this directly but reverse engineer adjacency through hammering;
    /// it is exposed for validation and for constructing ground truth.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Total row activations the device has seen (including bulk hammer
    /// activations), as observed by the internal TRR tracker.
    pub fn total_activations(&self) -> u64 {
        self.trr.activation_count()
    }

    /// The on-die ECC configuration.
    pub fn ondie_ecc(&self) -> OnDieEcc {
        self.ondie_ecc
    }

    /// Enables or disables on-die ECC. The study's modules run with
    /// [`OnDieEcc::None`] (§4.1); enabling SECDED is the extension that
    /// quantifies how much of the failure signal an internal code masks.
    pub fn set_ondie_ecc(&mut self, ecc: OnDieEcc) {
        self.ondie_ecc = ecc;
    }

    /// Words silently corrected by on-die ECC so far.
    pub fn ecc_corrections(&self) -> u64 {
        self.ecc_corrections
    }

    /// Current wordline voltage (V).
    pub fn vpp(&self) -> f64 {
        self.vpp
    }

    /// Drives the external `V_PP` rail.
    ///
    /// # Errors
    ///
    /// - [`DramError::VoltageOutOfRange`] outside absolute maximum ratings,
    /// - [`DramError::CommunicationLost`] below the module's `V_PPmin`.
    pub fn set_vpp(&mut self, vpp: f64) -> Result<(), DramError> {
        if !(physics::VPP_ABSOLUTE_MIN..=physics::VPP_ABSOLUTE_MAX).contains(&vpp) {
            return Err(DramError::VoltageOutOfRange { requested_vpp: vpp });
        }
        // Sub-millivolt tolerance: the supply's resolution is 1 mV and
        // floating-point ladder arithmetic must not flip the verdict at the
        // boundary.
        if vpp < self.spec.vpp_min - 1e-6 {
            return Err(DramError::CommunicationLost {
                requested_vpp: vpp,
                vpp_min: self.spec.vpp_min,
            });
        }
        self.vpp = vpp;
        self.trcd_req_at_vpp_ns = physics::t_rcd_required_ns(vpp, &self.spec.trcd);
        Ok(())
    }

    /// Current die temperature (°C).
    pub fn temperature_c(&self) -> f64 {
        self.temp_c
    }

    /// Sets the die temperature (the thermal controller's job).
    pub fn set_temperature_c(&mut self, temp_c: f64) {
        self.temp_c = temp_c;
    }

    /// Current device time (ns).
    pub fn now_ns(&self) -> f64 {
        self.clock_ns
    }

    /// Advances device time (the test infrastructure owns the clock).
    pub fn advance_ns(&mut self, dt_ns: f64) {
        self.clock_ns += dt_ns.max(0.0);
    }

    /// Activates a row: materializes pending failures, restores charge, and
    /// opens the row for column access.
    ///
    /// # Errors
    ///
    /// Fails on bad addresses or if the bank already has an open row.
    pub fn activate(&mut self, bank: u32, row: u32) -> Result<(), DramError> {
        self.geometry.check_bank(bank)?;
        self.geometry.check_row(row)?;
        if let Some(open) = self.banks[bank as usize].open_row {
            return Err(DramError::IllegalCommand {
                reason: format!("bank {bank} already has row {open} open"),
            });
        }
        let phys = self.mapping.logical_to_physical(row);
        self.disturb_neighbors(bank, phys, 1.0);
        self.trr.record_activations(row, 1);
        self.materialize_and_restore(bank, phys);
        let b = &mut self.banks[bank as usize];
        b.open_row = Some(row);
        b.open_phys = phys;
        Ok(())
    }

    /// Reads the 64-bit word at `column` from the open row.
    ///
    /// `t_rcd_used_ns` is the ACT→RD delay the controller actually used; if
    /// it is shorter than the row's requirement at the current `V_PP`, the
    /// returned word is (transiently) corrupted (§6.1).
    ///
    /// # Errors
    ///
    /// Fails on bad addresses or if no row is open.
    pub fn read(&mut self, bank: u32, column: u32, t_rcd_used_ns: f64) -> Result<u64, DramError> {
        self.geometry.check_bank(bank)?;
        self.geometry.check_column(column)?;
        let b = &self.banks[bank as usize];
        if b.open_row.is_none() {
            return Err(DramError::IllegalCommand {
                reason: format!("read from bank {bank} with no open row"),
            });
        }
        let phys = b.open_phys;
        let (stored, written) = match b.state_slot(phys) {
            Some(slot) => {
                let r = &b.states[slot];
                (
                    r.data[column as usize],
                    r.written.as_ref().map(|w| w[column as usize]),
                )
            }
            None => (self.uninitialized_word(bank, phys, column), None),
        };
        // On-die ECC decodes the array word first; an activation-latency
        // violation then corrupts the transfer to the interface.
        let delivered = match written {
            Some(w) => {
                let result = self.ondie_ecc.read(stored, w);
                self.ecc_corrections += result.corrected_bits as u64;
                result.data
            }
            None => stored,
        };
        Ok(self.corrupt_for_trcd(bank, phys, column, delivered, t_rcd_used_ns))
    }

    /// Writes a 64-bit word into the open row.
    ///
    /// # Errors
    ///
    /// Fails on bad addresses or if no row is open.
    pub fn write(&mut self, bank: u32, column: u32, value: u64) -> Result<(), DramError> {
        self.geometry.check_bank(bank)?;
        self.geometry.check_column(column)?;
        let b = &self.banks[bank as usize];
        if b.open_row.is_none() {
            return Err(DramError::IllegalCommand {
                reason: format!("write to bank {bank} with no open row"),
            });
        }
        let phys = b.open_phys;
        let slot = self.ensure_row_phys(bank, phys);
        let clock = self.clock_ns;
        let ecc = self.ondie_ecc;
        let state = &mut self.banks[bank as usize].states[slot];
        state.data[column as usize] = value;
        if ecc != OnDieEcc::None {
            state.written.get_or_insert_with(|| state.data.clone())[column as usize] = value;
        }
        state.restored_at_ns = clock;
        Ok(())
    }

    /// Precharges the bank, closing the open row. `elapsed_since_act_ns` is
    /// the time the row was kept open; closing earlier than the required
    /// restoration latency leaves the row partially charged (§6.2).
    ///
    /// # Errors
    ///
    /// Fails if the bank has no open row.
    pub fn precharge(&mut self, bank: u32, elapsed_since_act_ns: f64) -> Result<(), DramError> {
        self.geometry.check_bank(bank)?;
        let b = &mut self.banks[bank as usize];
        if b.open_row.take().is_none() {
            return Err(DramError::IllegalCommand {
                reason: format!("precharge of bank {bank} with no open row"),
            });
        }
        let phys = b.open_phys;
        let required = physics::t_ras_required_ns(self.vpp);
        if elapsed_since_act_ns < required {
            let penalty = (elapsed_since_act_ns / required).clamp(0.1, 1.0);
            if let Some(slot) = b.state_slot(phys) {
                b.states[slot].charge_penalty = penalty;
            }
        }
        Ok(())
    }

    /// Executes `count` activate–precharge cycles on `row` with the given
    /// cycle period — the hammering workhorse. Equivalent to `count` calls of
    /// [`DramModule::activate`]/[`DramModule::precharge`] with full `t_RAS`,
    /// but O(neighbors) instead of O(count). Advances the device clock by
    /// `count × period_ns`.
    ///
    /// # Errors
    ///
    /// Fails on bad addresses or if the bank has an open row.
    pub fn hammer(
        &mut self,
        bank: u32,
        row: u32,
        count: u64,
        period_ns: f64,
    ) -> Result<(), DramError> {
        self.geometry.check_bank(bank)?;
        self.geometry.check_row(row)?;
        if let Some(open) = self.banks[bank as usize].open_row {
            return Err(DramError::IllegalCommand {
                reason: format!("hammering bank {bank} while row {open} is open"),
            });
        }
        let phys = self.mapping.logical_to_physical(row);
        self.disturb_neighbors(bank, phys, count as f64);
        self.trr.record_activations(row, count);
        // The aggressor row itself is refreshed by its own activations.
        self.materialize_and_restore(bank, phys);
        self.clock_ns += count as f64 * period_ns.max(0.0);
        Ok(())
    }

    /// Issues a REF command: refreshes every tracked row and lets the TRR
    /// engine refresh the neighbors of sampled aggressors.
    ///
    /// The paper's methodology never calls this during tests — that is
    /// exactly how it disables TRR.
    pub fn refresh(&mut self) {
        let banks = self.geometry.banks;
        // TRR first: neighbors of sampled aggressors.
        let targets = self.trr.take_refresh_targets();
        for aggressor in targets {
            if aggressor < self.geometry.rows_per_bank {
                let (below, above) = self.mapping.physical_neighbors(aggressor);
                for victim in [below, above].into_iter().flatten() {
                    let victim_phys = self.mapping.logical_to_physical(victim);
                    for bank in 0..banks {
                        if self.banks[bank as usize].is_tracked(victim_phys) {
                            self.materialize_and_restore(bank, victim_phys);
                        }
                    }
                }
            }
        }
        // Regular refresh of all tracked rows, in ascending physical order.
        // Materialization never adds tracked rows, so a copied bitmap word
        // stays accurate while its bits are drained.
        for bank in 0..banks {
            let words = self.banks[bank as usize].tracked.len();
            for wi in 0..words {
                let mut word = self.banks[bank as usize].tracked[wi];
                while word != 0 {
                    let bit = word.trailing_zeros();
                    word &= word - 1;
                    self.materialize_and_restore(bank, wi as u32 * 64 + bit);
                }
            }
        }
    }

    /// Convenience: activate + write every column + precharge, with nominal
    /// timings. This is `initialize_row` in the paper's Alg. 1.
    ///
    /// # Errors
    ///
    /// Fails on bad addresses, an already-open bank, or a data length
    /// mismatch.
    pub fn write_row(&mut self, bank: u32, row: u32, data: &[u64]) -> Result<(), DramError> {
        if data.len() != self.geometry.columns_per_row as usize {
            return Err(DramError::AddressOutOfRange {
                what: format!(
                    "row data has {} words, geometry needs {}",
                    data.len(),
                    self.geometry.columns_per_row
                ),
            });
        }
        self.activate(bank, row)?;
        for (column, &value) in data.iter().enumerate() {
            self.write(bank, column as u32, value)?;
        }
        self.advance_ns(timing::NOMINAL_T_RAS_NS);
        self.precharge(bank, timing::NOMINAL_T_RAS_NS)?;
        self.advance_ns(timing::NOMINAL_T_RP_NS);
        Ok(())
    }

    /// Convenience: activate + read every column + precharge with the given
    /// ACT→RD delay.
    ///
    /// # Errors
    ///
    /// Fails on bad addresses or an already-open bank.
    pub fn read_row(&mut self, bank: u32, row: u32, t_rcd_ns: f64) -> Result<Vec<u64>, DramError> {
        self.activate(bank, row)?;
        self.advance_ns(t_rcd_ns);
        let mut out = Vec::with_capacity(self.geometry.columns_per_row as usize);
        for column in 0..self.geometry.columns_per_row {
            out.push(self.read(bank, column, t_rcd_ns)?);
        }
        let open_time = t_rcd_ns.max(timing::NOMINAL_T_RAS_NS);
        self.advance_ns(open_time - t_rcd_ns);
        self.precharge(bank, open_time)?;
        self.advance_ns(timing::NOMINAL_T_RP_NS);
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Bulk open-row access — the compiled SoftMC fast path.
    //
    // These operate on the bank's *open* row like `read`/`write`, but move
    // a whole burst of columns per call so the per-access bookkeeping
    // (geometry checks, open-row check, arena slot and parameter lookups)
    // is paid once per row instead of once per column. Each is specified —
    // and tested, by the compiled-vs-interpreted equivalence suite — to
    // leave the device in exactly the state the per-column calls would.
    // ------------------------------------------------------------------

    /// Advances device time to an absolute instant (no-op if time is
    /// already past it). The slot-grid engine uses this to land the clock
    /// exactly on a precomputed command slot, which repeated relative
    /// [`DramModule::advance_ns`] calls could miss by an ulp.
    pub fn advance_to_ns(&mut self, t_ns: f64) {
        if t_ns > self.clock_ns {
            self.clock_ns = t_ns;
        }
    }

    /// Writes `value` into columns `0..columns` of the open row — the bulk
    /// equivalent of one [`DramModule::write`] per column. As with the
    /// per-column calls, the row's restore stamp is the *current* clock, so
    /// the caller advances time to the final write's command slot first.
    ///
    /// # Errors
    ///
    /// Fails on a bad bank, more columns than the geometry has, or no open
    /// row.
    pub fn fill_open_row(&mut self, bank: u32, columns: u32, value: u64) -> Result<(), DramError> {
        self.write_open_row_impl(bank, columns, None, value)
    }

    /// Writes one word per column into columns `0..data.len()` of the open
    /// row — the bulk equivalent of one [`DramModule::write`] per column.
    /// Clock contract as for [`DramModule::fill_open_row`].
    ///
    /// # Errors
    ///
    /// Fails on a bad bank, more words than the geometry has columns, or no
    /// open row.
    pub fn write_open_row(&mut self, bank: u32, data: &[u64]) -> Result<(), DramError> {
        self.write_open_row_impl(bank, data.len() as u32, Some(data), 0)
    }

    fn write_open_row_impl(
        &mut self,
        bank: u32,
        columns: u32,
        data: Option<&[u64]>,
        value: u64,
    ) -> Result<(), DramError> {
        self.geometry.check_bank(bank)?;
        if columns > self.geometry.columns_per_row {
            return Err(DramError::AddressOutOfRange {
                what: format!(
                    "burst of {} columns, geometry has {}",
                    columns, self.geometry.columns_per_row
                ),
            });
        }
        let b = &self.banks[bank as usize];
        if b.open_row.is_none() {
            return Err(DramError::IllegalCommand {
                reason: format!("write to bank {bank} with no open row"),
            });
        }
        let phys = b.open_phys;
        let slot = self.ensure_row_phys(bank, phys);
        let clock = self.clock_ns;
        let ecc = self.ondie_ecc;
        let n = columns as usize;
        let state = &mut self.banks[bank as usize].states[slot];
        match data {
            Some(words) => state.data[..n].copy_from_slice(words),
            None => state.data[..n].fill(value),
        }
        if ecc != OnDieEcc::None {
            // Sequential per-column writes clone the array on the first
            // write (after that column already holds the new word) and then
            // overwrite each written column — identical to filling the data
            // first and cloning afterwards.
            let written = state.written.get_or_insert_with(|| state.data.clone());
            match data {
                Some(words) => written[..n].copy_from_slice(words),
                None => written[..n].fill(value),
            }
        }
        state.restored_at_ns = clock;
        Ok(())
    }

    /// Reads columns `0..columns` of the open row on successive command
    /// slots, appending the words to `out` — the bulk equivalent of one
    /// [`DramModule::read`] per column under the engine's slot-grid issue.
    ///
    /// The device clock must stand at the ACT issue slot of the open row
    /// (where the slot-grid engine leaves it immediately after
    /// [`DramModule::activate`]). Each column's effective ACT→RD delay is
    /// then replayed through the controller's per-column issue recurrence —
    /// the first column sees `max(one command slot, t_rcd_ns)`, each later
    /// column one more slot — with bit-identical float arithmetic, and the
    /// clock is left at the final read's slot.
    ///
    /// # Errors
    ///
    /// Fails on a bad bank, more columns than the geometry has, or no open
    /// row.
    pub fn read_open_row_into(
        &mut self,
        bank: u32,
        t_rcd_ns: f64,
        columns: u32,
        out: &mut Vec<u64>,
    ) -> Result<(), DramError> {
        self.geometry.check_bank(bank)?;
        if columns > self.geometry.columns_per_row {
            return Err(DramError::AddressOutOfRange {
                what: format!(
                    "burst of {} columns, geometry has {}",
                    columns, self.geometry.columns_per_row
                ),
            });
        }
        if self.banks[bank as usize].open_row.is_none() {
            return Err(DramError::IllegalCommand {
                reason: format!("read from bank {bank} with no open row"),
            });
        }
        let phys = self.banks[bank as usize].open_phys;
        // Hoisted per-row work: parameters (derived on first touch, exactly
        // as the first per-column read would), the tRCD requirement, and the
        // row's hash seed.
        let pslot = self.ensure_params(bank, phys);
        let jitter = self.profile.trcd_jitter_ns;
        let required = self.banks[bank as usize].params[pslot].trcd_base_ns
            + self.trcd_req_at_vpp_ns
            - self.spec.trcd.base_ns;
        let rseed = hash::row_seed(self.seed, bank, phys);
        let ecc = self.ondie_ecc;
        let act_at = self.clock_ns;
        let rcd_target = act_at + t_rcd_ns;
        let mut clock = act_at;
        let mut last = act_at;
        let mut ecc_corrected: u64 = 0;
        let mut trcd_flip_bits: u64 = 0;
        let mut trcd_corrupt_reads: u64 = 0;
        out.reserve(columns as usize);
        {
            let b = &self.banks[bank as usize];
            let state = b.state_slot(phys).map(|slot| &b.states[slot]);
            for column in 0..columns {
                let (stored, written) = match state {
                    Some(r) => (
                        r.data[column as usize],
                        r.written.as_ref().map(|w| w[column as usize]),
                    ),
                    None => (self.uninitialized_word(bank, phys, column), None),
                };
                let delivered = match written {
                    Some(w) => {
                        let result = ecc.read(stored, w);
                        ecc_corrected += result.corrected_bits as u64;
                        result.data
                    }
                    None => stored,
                };
                // The controller's issue recurrence, float-op for float-op.
                let target = (last + timing::COMMAND_SLOT_NS).max(rcd_target);
                if target > clock {
                    clock += target - clock;
                }
                last = clock;
                let t_rcd_used_ns = clock - act_at;
                // Inlined `corrupt_for_trcd` with the per-row factors hoisted.
                let shortfall = required - t_rcd_used_ns;
                let word = if shortfall <= -jitter {
                    delivered
                } else {
                    let p = ((shortfall + jitter) / (2.0 * jitter)).clamp(0.0, 1.0);
                    let mut corrupted = delivered;
                    for bit in 0..64u32 {
                        let cseed = hash::cell_seed(rseed, column * 64 + bit);
                        if hash::uniform01(hash::combine(cseed, SALT_TRCD)) < p {
                            corrupted ^= 1 << bit;
                        }
                    }
                    if corrupted != delivered {
                        trcd_flip_bits += u64::from((corrupted ^ delivered).count_ones());
                        trcd_corrupt_reads += 1;
                    }
                    corrupted
                };
                out.push(word);
            }
        }
        self.clock_ns = clock;
        self.ecc_corrections += ecc_corrected;
        if trcd_corrupt_reads > 0 {
            counter_add!("dram_flips_trcd", trcd_flip_bits);
            counter_add!("dram_trcd_corrupt_reads", trcd_corrupt_reads);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Test oracle — model introspection for validation, not methodology.
    // ------------------------------------------------------------------

    /// Ground-truth `HC_first` of a row's weakest cell at nominal `V_PP`.
    ///
    /// This reads the generative model directly; the study methodology must
    /// instead *measure* it through the device interface. Exposed for
    /// validation tests and experiment ground truth.
    pub fn oracle_hc_first_nominal(&mut self, bank: u32, row: u32) -> f64 {
        let phys = self.mapping.logical_to_physical(row);
        let slot = self.ensure_params(bank, phys);
        self.banks[bank as usize].params[slot].ln_hc_first.exp()
    }

    /// Ground-truth normalized `HC_first` multiplier of a row at `vpp`.
    pub fn oracle_hc_multiplier(&mut self, bank: u32, row: u32, vpp: f64) -> f64 {
        let phys = self.mapping.logical_to_physical(row);
        let slot = self.ensure_params(bank, phys);
        let coeffs = self.banks[bank as usize].params[slot].coeffs;
        physics::hc_multiplier(vpp, &coeffs)
    }

    /// Ground-truth required `t_RCD` of a row at `vpp` (ns), excluding
    /// per-cell jitter.
    pub fn oracle_t_rcd_required(&mut self, bank: u32, row: u32, vpp: f64) -> f64 {
        let phys = self.mapping.logical_to_physical(row);
        let slot = self.ensure_params(bank, phys);
        let base = self.banks[bank as usize].params[slot].trcd_base_ns;
        base + physics::t_rcd_required_ns(vpp, &self.spec.trcd) - self.spec.trcd.base_ns
    }

    /// Pre-derives the row-parameter table for a chunk of logical rows and
    /// their distance-≤2 physical neighborhoods.
    ///
    /// The execution engine calls this once per work unit so the ladder's
    /// hammer loops run against a fully populated table instead of deriving
    /// parameters lazily mid-sweep. Derivation is a pure function of the
    /// specimen seed, so pre-deriving changes no results — only when the
    /// work happens. Out-of-range rows are ignored.
    pub fn prepare_rows(&mut self, bank: u32, rows: &[u32]) {
        if bank >= self.geometry.banks {
            return;
        }
        let rows_per_bank = self.geometry.rows_per_bank;
        for &row in rows {
            if row >= rows_per_bank {
                continue;
            }
            let phys = self.mapping.logical_to_physical(row);
            let lo = phys.saturating_sub(2);
            let hi = (phys + 2).min(rows_per_bank - 1);
            for p in lo..=hi {
                self.ensure_params(bank, p);
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Cycle-to-cycle measurement noise: a multiplicative factor near 1,
    /// drawn from an advancing deterministic stream. Real devices show
    /// run-to-run variation (the paper quantifies it via the coefficient of
    /// variation in §4.6); without this term, repeated identical experiments
    /// on the model would be bit-identical and the CV analysis vacuous.
    fn next_noise(&mut self, sigma: f64) -> f64 {
        self.noise_seq += 1;
        (1.0 + sigma * hash::standard_normal(hash::combine(self.noise_seed, self.noise_seq)))
            .max(0.5)
    }

    /// Rebases the cycle-to-cycle measurement-noise stream onto `stream_seed`
    /// and restarts it from the beginning.
    ///
    /// Per-cell physics (thresholds, retention times, orientations) are
    /// untouched — the module remains the same specimen. Only the run-to-run
    /// noise becomes a pure function of `stream_seed` and the subsequent
    /// operation sequence instead of the module's full history. The parallel
    /// execution engine calls this with a seed derived from
    /// `(seed, module, bank, chunk)` (see `hash::chunk_seed`) so that sweep
    /// results are independent of worker count and scheduling.
    pub fn reseed_noise(&mut self, stream_seed: u64) {
        self.noise_seed = stream_seed;
        self.noise_seq = 0;
    }

    /// Returns the arena slot of the row's parameters, deriving them on
    /// first touch. A hit is a single bounds-checked load.
    fn ensure_params(&mut self, bank: u32, phys: u32) -> usize {
        let rows = self.geometry.rows_per_bank;
        {
            let b = &mut self.banks[bank as usize];
            b.ensure_capacity(rows);
            if let Some(slot) = b.params_slot(phys) {
                return slot;
            }
        }
        let params = self.derive_row_params(bank, phys);
        let b = &mut self.banks[bank as usize];
        let slot = b.params.len();
        b.params.push(params);
        b.params_rows.push(phys);
        b.params_index[phys as usize] = slot as u32;
        slot
    }

    fn derive_row_params(&self, bank: u32, phys: u32) -> RowParams {
        let spec = &self.spec;
        let profile = &self.profile;
        let rs = hash::row_seed(self.seed, bank, phys);
        let sigma = profile.cell_sigma;

        // Row HC_first: module minimum × exp(Exponential(eta_mean)).
        let eta = -self.eta_mean * hash::uniform01(hash::combine(rs, SALT_ROW)).max(1e-12).ln();
        let ln_hc_first = spec.hc_first_nominal.ln() + eta;
        let mu_ln = ln_hc_first + self.z_n * sigma;

        // Voltage response: target multiplier = module target × population
        // uplift × vendor spread, clamped to the vendor's Fig. 6 range;
        // margin and mechanism split drawn from the vendor profile;
        // coefficients solved to realize the target exactly at V_PPmin.
        //
        // The uplift reconciles two paper-reported statistics: Table 3's
        // module values are worst-case (the *minimum* HC_first across rows at
        // each voltage), while §5's +7.4 % / −15.2 % means are per-row
        // averages — the typical row responds more strongly than the ratio of
        // the worst-case values suggests.
        const ROW_POPULATION_UPLIFT: f64 = 1.05;
        let spread = (profile.row_multiplier_sigma
            * hash::standard_normal(hash::combine(rs, SALT_ROW ^ 0xA)))
        .exp();
        let (lo, hi) = profile.multiplier_range;
        let target = (spec.hc_multiplier_target() * ROW_POPULATION_UPLIFT * spread).clamp(lo, hi);
        let margin = hash::uniform(
            hash::combine(rs, SALT_ROW ^ 0xB),
            profile.margin_range.0,
            profile.margin_range.1,
        );
        let dq_share = hash::uniform(
            hash::combine(rs, SALT_ROW ^ 0xC),
            profile.dq_share_range.0,
            profile.dq_share_range.1,
        );
        let coeffs = physics::solve_coeffs(target, spec.vpp_min, margin, dq_share);

        // Activation latency: module base with mild, bounded per-row
        // variation.
        let trcd_base_ns =
            spec.trcd.base_ns + hash::uniform(hash::combine(rs, SALT_TRCD), -0.2, 0.2);

        // Retention weak clusters (Fig. 11): row membership and word choice.
        let pick_words = |clusters: &[vendor::WeakCluster], salt: u64| -> Vec<u32> {
            let mut words = Vec::new();
            let mut acc = 0.0;
            let u = hash::uniform01(hash::combine(rs, SALT_CLUSTER ^ salt));
            for (ci, cluster) in clusters.iter().enumerate() {
                acc += cluster.row_fraction;
                if u < acc {
                    // Arithmetic-progression sampling with an odd stride over
                    // the power-of-two column count: distinct by construction,
                    // so an n-word cluster really has n erroneous words
                    // (Fig. 11 plots these counts exactly).
                    let columns = self.geometry.columns_per_row;
                    let n = cluster.words.min(columns);
                    let h = hash::splitmix64(hash::combine(
                        rs,
                        SALT_CLUSTER ^ salt ^ ((ci as u64) << 32),
                    ));
                    let base = (h % columns as u64) as u32;
                    let stride = ((h >> 32) as u32 | 1) % columns.max(1);
                    let stride = stride.max(1) | 1;
                    for w in 0..n {
                        words.push((base.wrapping_add(w.wrapping_mul(stride))) % columns);
                    }
                    break;
                }
            }
            words.sort_unstable();
            words.dedup();
            words
        };
        let cluster64_words = pick_words(&spec.cluster64, 0x64);
        let cluster128_words = pick_words(&profile.cluster128, 0x128);

        RowParams {
            ln_hc_first,
            mu_ln,
            sigma,
            coeffs,
            trcd_base_ns,
            cluster64_words,
            cluster128_words,
            masks: None,
            flip_index: None,
        }
    }

    /// Derives the row's per-cell masks if they are not cached yet.
    ///
    /// Pure per-cell hash draws folded into bitmasks — no observable
    /// behaviour depends on *when* this runs, so it is deferred until a
    /// materialization actually has flip work to do.
    fn ensure_masks(&mut self, bank: u32, pslot: usize, phys: u32) {
        if self.banks[bank as usize].params[pslot].masks.is_some() {
            return;
        }
        let columns = self.geometry.columns_per_row;
        let rseed = hash::row_seed(self.seed, bank, phys);
        let cells = columns as usize * 64;
        let mut polarity = Vec::with_capacity(columns as usize);
        let mut pref = Vec::with_capacity(columns as usize);
        let mut u_hc = Vec::with_capacity(cells);
        let mut u_ret = Vec::with_capacity(cells);
        for word in 0..columns {
            let mut pol = 0u64;
            let mut pf = 0u64;
            for bit in 0..64u32 {
                let cseed = hash::cell_seed(rseed, word * 64 + bit);
                let mut charged_polarity = ((bit ^ phys) & 1) as u64;
                if hash::uniform01(hash::combine(cseed, SALT_ORI)) < 0.05 {
                    charged_polarity ^= 1;
                }
                pol |= charged_polarity << bit;
                if hash::uniform01(hash::combine(cseed, SALT_PREF)) < 0.10 {
                    pf |= 1u64 << bit;
                }
                u_hc.push(hash::uniform01(hash::combine(cseed, SALT_HC)));
                u_ret.push(hash::uniform01(hash::combine(cseed, SALT_RET)));
            }
            polarity.push(pol);
            pref.push(pf);
        }
        let p = &mut self.banks[bank as usize].params[pslot];
        p.masks = Some(CellMasks { polarity, pref });
        p.flip_index = Some(FlipIndex {
            hc: SaltIndex::build(&u_hc),
            ret: SaltIndex::build(&u_ret),
        });
    }

    /// Accumulates disturbance on the physical neighbors of an activated row.
    ///
    /// A hammer burst of N activations arrives here as one call with
    /// `count = N` — the whole burst is a single batched flush into the
    /// victims' accumulators. Victims are addressed physically, so no
    /// logical↔physical translation happens on this path; untracked
    /// neighbors cost one bitmap probe each.
    fn disturb_neighbors(&mut self, bank: u32, phys: u32, count: f64) {
        counter_add!("dram_disturb_events", 1);
        let count = count * self.next_noise(0.025);
        let rows = self.geometry.rows_per_bank;
        let b = &mut self.banks[bank as usize];
        if b.states.is_empty() {
            return;
        }
        // Each victim tracks which side the aggressor activity came from so
        // the two-sided synergy term can be evaluated at materialization.
        // From a victim at phys v, an aggressor at v−1 or v−2 is "below".
        let contributions = [
            (phys.wrapping_sub(1), count, false), // victim below the aggressor → aggressor is its above-neighbor
            (phys + 1, count, true),
            (phys.wrapping_sub(2), 2.0 * DIST2_WEIGHT * count, false),
            (phys + 2, 2.0 * DIST2_WEIGHT * count, true),
        ];
        for (victim_phys, amount, aggressor_is_below) in contributions {
            if victim_phys >= rows {
                continue;
            }
            if let Some(slot) = b.state_slot(victim_phys) {
                let state = &mut b.states[slot];
                if aggressor_is_below {
                    state.disturb_below += amount;
                } else {
                    state.disturb_above += amount;
                }
            }
        }
    }

    /// Converts a row's accumulated disturbance and elapsed retention time
    /// into materialized bit flips, then restores the row in place.
    ///
    /// The row's state and parameters stay in their arenas throughout —
    /// disjoint field borrows replace the old remove/clone/reinsert dance.
    fn materialize_and_restore(&mut self, bank: u32, phys: u32) {
        let pslot = self.ensure_params(bank, phys);
        let slot = self.ensure_row_phys(bank, phys);
        let clock = self.clock_ns;
        let vpp = self.vpp;
        let temp = self.temp_c;
        let retention = self.profile.retention;
        let columns = self.geometry.columns_per_row;
        let vpp_min = self.spec.vpp_min;

        let (mu_ln, sigma, coeffs, has_cluster) = {
            let p = &self.banks[bank as usize].params[pslot];
            (
                p.mu_ln,
                p.sigma,
                p.coeffs,
                !p.cluster64_words.is_empty() || !p.cluster128_words.is_empty(),
            )
        };
        let (charge_penalty, disturb, elapsed_s) = {
            let s = &self.banks[bank as usize].states[slot];
            let (lo, hi) = (s.disturb_below, s.disturb_above);
            (
                s.charge_penalty,
                (0.5 * (lo + hi) + TWO_SIDED_KAPPA * lo.min(hi)) / (1.0 + TWO_SIDED_KAPPA),
                ((clock - s.restored_at_ns) * 1e-9).max(0.0),
            )
        };

        // --- RowHammer flip probabilities per pattern class -------------
        // A cell flips when its threshold (nominal lognormal x voltage
        // multiplier x pattern factor) is at or below the accumulated
        // disturbance; per cell this reduces to one hash + compare against
        // a per-class probability cutoff.
        let mut p_hammer = [0.0f64; 2]; // [aligned horizontal, anti-aligned]
        if disturb > 0.0 {
            let multiplier = physics::hc_multiplier(vpp, &coeffs) * charge_penalty.powf(0.5);
            let ln_d = disturb.ln();
            for (class, factor) in [(0usize, 1.0f64), (1usize, 1.25f64)] {
                let ln_thresh = mu_ln + multiplier.ln() + factor.ln();
                p_hammer[class] = hash::normal_cdf((ln_d - ln_thresh) / sigma);
            }
        }

        // --- Retention flip probability ---------------------------------
        let mut p_ret = 0.0f64;
        let mut cluster_relevant = false;
        if elapsed_s > 0.0 {
            let scale = retention.temperature_scale(temp)
                * retention.vpp_scale(vpp)
                * charge_penalty.powi(2);
            let adj = elapsed_s * self.next_noise(0.04) / scale.max(1e-12);
            p_ret = hash::normal_cdf((adj.ln() - retention.mu_ln_s) / retention.sigma_ln);
            if p_ret < 1e-12 {
                p_ret = 0.0;
            }
            // Weak clusters live in the tens-of-ms band at 80 degC; at lower
            // temperatures and nominal V_PP they scale out of reach.
            let min_cluster_s = 0.03 * retention.temperature_scale(temp) * retention.vpp_scale(vpp);
            cluster_relevant = has_cluster && elapsed_s >= min_cluster_s;
        }

        let rseed = hash::row_seed(self.seed, bank, phys);
        let hammer_possible = p_hammer[1] * (columns as f64) * 64.0 > 1e-4;
        // Flip attribution for the metrics registry: tallied locally (plain
        // integer adds), flushed once per materialization. Pure observation —
        // nothing below reads these.
        let mut n_hammer = 0u64;
        let mut n_ret = 0u64;
        let mut n_cluster = 0u64;
        if hammer_possible || p_ret > 0.0 {
            self.ensure_masks(bank, pslot, phys);
        }
        // All noise draws are done; borrow the arenas and the staging
        // scratch disjointly so the candidate scans mutate the state while
        // reading the parameters in place.
        let Bank {
            params,
            states,
            flip_scratch,
            ..
        } = &mut self.banks[bank as usize];
        let params = &params[pslot];
        let state = &mut states[slot];
        if hammer_possible || p_ret > 0.0 {
            let masks = params.masks.as_ref().expect("ensured");
            let index = params.flip_index.as_ref().expect("ensured");
            flip_scratch.flips.resize(columns as usize, 0);
            let FlipScratch { flips, touched } = flip_scratch;
            debug_assert!(touched.is_empty());

            // RowHammer flips: only cells whose fixed draw can clear the
            // aligned-class cutoff (the larger of the two) are candidates.
            // Each candidate is then charge-filtered and classed from the
            // pre-flip word exactly as the per-cell loop did: only charged
            // cells lose charge (a cell is charged when it stores its
            // polarity), and the horizontal-coupling class — neighbors
            // storing the opposite value couple hardest, occasionally
            // inverted by a per-cell preference bit — picks the cutoff.
            if hammer_possible {
                let p_max = p_hammer[0].max(p_hammer[1]);
                for &(u, cell) in index.hc.candidates(p_max) {
                    let word = (cell >> 6) as usize;
                    let bit = cell & 63;
                    let current = state.data[word];
                    if (current ^ masks.polarity[word]) >> bit & 1 != 0 {
                        continue; // discharged
                    }
                    let stored = (current >> bit) & 1;
                    let left = if bit > 0 {
                        (current >> (bit - 1)) & 1
                    } else {
                        stored ^ 1
                    };
                    let right = if bit < 63 {
                        (current >> (bit + 1)) & 1
                    } else {
                        stored ^ 1
                    };
                    let mut aligned = left != stored && right != stored;
                    if (masks.pref[word] >> bit) & 1 == 1 {
                        aligned = !aligned;
                    }
                    let p = if aligned { p_hammer[0] } else { p_hammer[1] };
                    if u < p {
                        if flips[word] == 0 {
                            touched.push(word as u32);
                        }
                        flips[word] |= 1 << bit;
                        n_hammer += 1;
                    }
                }
            }

            // Retention flips: charged cells that did not already flip by
            // hammer. Each cell appears at most once per salt table, so a
            // staged bit seen here can only be a hammer flip — matching the
            // per-cell loop's `continue` after a hammer flip.
            if p_ret > 0.0 {
                for &(u, cell) in index.ret.candidates(p_ret) {
                    if u >= p_ret {
                        continue;
                    }
                    let word = (cell >> 6) as usize;
                    let bit = cell & 63;
                    let current = state.data[word];
                    if (current ^ masks.polarity[word]) >> bit & 1 != 0 {
                        continue;
                    }
                    if (flips[word] >> bit) & 1 == 0 {
                        if flips[word] == 0 {
                            touched.push(word as u32);
                        }
                        flips[word] |= 1 << bit;
                        n_ret += 1;
                    }
                }
            }

            // Weak-cluster flips. The per-word pass called `cluster_flips`
            // on every word, but it returns 0 outside the row's cluster
            // lists; walking the (sorted, deduped) union is identical. Reads
            // the pre-flip word — the staged flips are not applied yet.
            if cluster_relevant {
                let (a, b) = (&params.cluster64_words, &params.cluster128_words);
                let (mut i, mut j) = (0usize, 0usize);
                while i < a.len() || j < b.len() {
                    let word = match (a.get(i), b.get(j)) {
                        (Some(&x), Some(&y)) if x == y => {
                            i += 1;
                            j += 1;
                            x
                        }
                        (Some(&x), Some(&y)) if x < y => {
                            i += 1;
                            x
                        }
                        (Some(_), Some(&y)) => {
                            j += 1;
                            y
                        }
                        (Some(&x), None) => {
                            i += 1;
                            x
                        }
                        (None, Some(&y)) => {
                            j += 1;
                            y
                        }
                        (None, None) => unreachable!(),
                    };
                    let w = word as usize;
                    let cluster = cluster_flips(
                        params,
                        &retention,
                        vpp_min,
                        rseed,
                        phys,
                        word,
                        state.data[w],
                        elapsed_s,
                        temp,
                        vpp,
                        charge_penalty,
                    );
                    if cluster != 0 {
                        n_cluster += u64::from((cluster & !flips[w]).count_ones());
                        if flips[w] == 0 {
                            touched.push(word);
                        }
                        flips[w] |= cluster;
                    }
                }
            }

            // Deferred apply: every decision above read pre-flip words, so
            // one XOR per touched word lands all of them at once. Staged
            // bits are cleared on the way out, leaving the scratch zeroed
            // for the next materialization. Dense rows take the wide-word
            // whole-row pass (XOR with a zero mask is the identity, so the
            // result is the same either way); sparse rows walk the touched
            // list.
            let row_words = flips.len().min(state.data.len());
            if crate::wide::dense_apply_pays(touched.len(), row_words) {
                crate::wide::xor_apply_clear(&mut state.data[..row_words], &mut flips[..row_words]);
            } else {
                crate::wide::xor_apply_clear_sparse(&mut state.data, flips, touched);
            }
            touched.clear();
        } else if cluster_relevant {
            for wi in 0..params.cluster64_words.len() + params.cluster128_words.len() {
                let word = if wi < params.cluster64_words.len() {
                    params.cluster64_words[wi]
                } else {
                    params.cluster128_words[wi - params.cluster64_words.len()]
                };
                let current = state.data[word as usize];
                let flips = cluster_flips(
                    params,
                    &retention,
                    vpp_min,
                    rseed,
                    phys,
                    word,
                    current,
                    elapsed_s,
                    temp,
                    vpp,
                    charge_penalty,
                );
                n_cluster += u64::from(flips.count_ones());
                state.data[word as usize] ^= flips;
            }
        }
        // Restore in place.
        state.restored_at_ns = clock;
        state.disturb_below = 0.0;
        state.disturb_above = 0.0;
        state.charge_penalty = 1.0;
        if n_hammer + n_ret + n_cluster > 0 {
            counter_add!("dram_flips_hammer", n_hammer);
            counter_add!("dram_flips_retention", n_ret);
            counter_add!("dram_flips_cluster", n_cluster);
        }
    }

    /// Transient read corruption when the used `t_RCD` is below the row's
    /// requirement at the current `V_PP`.
    fn corrupt_for_trcd(
        &mut self,
        bank: u32,
        phys: u32,
        column: u32,
        stored: u64,
        t_rcd_used_ns: f64,
    ) -> u64 {
        let jitter = self.profile.trcd_jitter_ns;
        let slot = self.ensure_params(bank, phys);
        let trcd_base = self.banks[bank as usize].params[slot].trcd_base_ns;
        let module_base = self.spec.trcd.base_ns;
        let required = trcd_base + self.trcd_req_at_vpp_ns - module_base;
        // Per-cell requirements are *bounded*: row requirement ± jitter. A
        // read at or beyond `required + jitter` is reliable by construction,
        // which is what lets §6.1's "works at 24 ns / 15 ns" statements be
        // crisp rather than probabilistic.
        let shortfall = required - t_rcd_used_ns;
        if shortfall <= -jitter {
            return stored;
        }
        let p = ((shortfall + jitter) / (2.0 * jitter)).clamp(0.0, 1.0);
        let rseed = hash::row_seed(self.seed, bank, phys);
        let mut corrupted = stored;
        for bit in 0..64u32 {
            let cseed = hash::cell_seed(rseed, column * 64 + bit);
            if hash::uniform01(hash::combine(cseed, SALT_TRCD)) < p {
                corrupted ^= 1 << bit;
            }
        }
        if corrupted != stored {
            counter_add!("dram_flips_trcd", (corrupted ^ stored).count_ones());
            counter_add!("dram_trcd_corrupt_reads", 1);
        }
        corrupted
    }

    /// Deterministic power-on content of an untracked row's word.
    fn uninitialized_word(&self, bank: u32, phys: u32, column: u32) -> u64 {
        hash::splitmix64(hash::combine(
            hash::row_seed(self.seed, bank, phys),
            SALT_INIT ^ column as u64,
        ))
    }

    /// Returns the arena slot of the row's state, materializing the
    /// deterministic power-on content on first touch.
    fn ensure_row_phys(&mut self, bank: u32, phys: u32) -> usize {
        let columns = self.geometry.columns_per_row;
        let clock = self.clock_ns;
        let seed = self.seed;
        let rows = self.geometry.rows_per_bank;
        let b = &mut self.banks[bank as usize];
        b.ensure_capacity(rows);
        if let Some(slot) = b.state_slot(phys) {
            return slot;
        }
        let data = (0..columns)
            .map(|c| {
                hash::splitmix64(hash::combine(
                    hash::row_seed(seed, bank, phys),
                    SALT_INIT ^ c as u64,
                ))
            })
            .collect();
        let slot = b.states.len();
        b.states.push(RowState {
            data,
            written: None,
            restored_at_ns: clock,
            disturb_below: 0.0,
            disturb_above: 0.0,
            charge_penalty: 1.0,
        });
        b.state_index[phys as usize] = slot as u32;
        b.tracked[(phys / 64) as usize] |= 1u64 << (phys % 64);
        slot
    }

    /// Rolls a used module back to its just-constructed state in O(touched
    /// rows), so a session pool can recycle instances instead of cloning the
    /// blueprint per work unit.
    ///
    /// Dirty row slots and the row-parameter arenas are cleared by walking
    /// each bank's occupancy structures (the `tracked` bitmap, the
    /// `params_rows` list), so the cost is O(touched rows), not O(bank
    /// rows); the repair map and calibration (`eta_mean`/`z_n`) are pure
    /// functions of `(spec, seed, geometry)` and are kept. Everything
    /// stateful — V_PP, temperature, clock, TRR tracker, noise stream, ECC
    /// counters — is re-derived exactly as [`DramModule::with_geometry`]
    /// derives it, and a debug build asserts the result is
    /// indistinguishable from a pristine construction.
    pub fn reset_to_pristine(&mut self) {
        for bank in &mut self.banks {
            bank.reset_touched();
        }
        self.vpp = physics::VPP_NOMINAL;
        self.temp_c = 50.0;
        self.clock_ns = 0.0;
        let trr_policy = match self.spec.mfr {
            Manufacturer::A => TrrPolicy::Periodic { period: 2048 },
            Manufacturer::B => TrrPolicy::Probabilistic { chance: 1024 },
            Manufacturer::C => TrrPolicy::FrequencyTable { entries: 8 },
        };
        self.trr = TrrEngine::new(trr_policy, hash::combine(self.seed, 0x7272));
        self.noise_seed = self.seed ^ SALT_NOISE;
        self.noise_seq = 0;
        self.ondie_ecc = OnDieEcc::None;
        self.ecc_corrections = 0;
        self.trcd_req_at_vpp_ns = physics::t_rcd_required_ns(physics::VPP_NOMINAL, &self.spec.trcd);
        #[cfg(debug_assertions)]
        self.debug_assert_pristine();
    }

    /// Pristine-equivalence check behind `reset_to_pristine` (debug builds
    /// only): every observable piece of per-run state must be back at its
    /// constructor value.
    #[cfg(debug_assertions)]
    fn debug_assert_pristine(&self) {
        assert_eq!(self.vpp, physics::VPP_NOMINAL);
        assert_eq!(self.temp_c, 50.0);
        assert_eq!(self.clock_ns, 0.0);
        assert_eq!(self.noise_seq, 0);
        assert_eq!(self.ecc_corrections, 0);
        assert_eq!(self.trr.activation_count(), 0);
        for bank in &self.banks {
            assert!(bank.open_row.is_none());
            assert!(bank.states.is_empty());
            assert!(bank.tracked.iter().all(|&w| w == 0));
            assert!(bank.state_index.iter().all(|&s| s == NO_SLOT));
            assert!(bank.params.is_empty());
            assert!(bank.params_rows.is_empty());
            assert!(bank.params_index.iter().all(|&s| s == NO_SLOT));
            assert!(bank.flip_scratch.touched.is_empty());
            assert!(bank.flip_scratch.flips.iter().all(|&w| w == 0));
        }
    }
}

/// A pre-calibrated module template shared across work chunks.
///
/// Construction of a [`DramModule`] pays a fixed calibration cost
/// (`calibrate_eta_mean` runs a 60-step bisection over a 256-point
/// quadrature) plus vendor-profile and repair-map derivation. All of it is
/// a pure function of `(spec, seed, geometry)`, so the execution engine
/// builds one blueprint per module and clones the pristine device per
/// `(module, chunk)` work unit. A pristine module has empty per-bank
/// arenas, making the clone a handful of small allocations.
#[derive(Debug, Clone)]
pub struct ModuleBlueprint {
    pristine: DramModule,
    /// Memoized `(V_PPmin, ladder steps)` of the §4.1 descending search, if
    /// the owner has characterized it. Like the paper's per-module
    /// calibration, the search result is a pure function of the calibrated
    /// module, so units can replay the memo instead of re-running the
    /// ladder.
    vppmin_memo: Option<(f64, u64)>,
}

impl ModuleBlueprint {
    /// Calibrates a blueprint from a spec and specimen seed.
    ///
    /// # Errors
    ///
    /// Propagates [`DramModule::new`] errors.
    pub fn new(spec: ModuleSpec, seed: u64) -> Result<Self, DramError> {
        DramModule::new(spec, seed).map(|pristine| ModuleBlueprint {
            pristine,
            vppmin_memo: None,
        })
    }

    /// Calibrates a blueprint with an overridden geometry.
    ///
    /// # Errors
    ///
    /// Propagates [`DramModule::with_geometry`] errors.
    pub fn with_geometry(
        spec: ModuleSpec,
        seed: u64,
        geometry: Geometry,
    ) -> Result<Self, DramError> {
        DramModule::with_geometry(spec, seed, geometry).map(|pristine| ModuleBlueprint {
            pristine,
            vppmin_memo: None,
        })
    }

    /// The blueprint's calibration record.
    pub fn spec(&self) -> &ModuleSpec {
        &self.pristine.spec
    }

    /// The memoized `(V_PPmin, ladder steps)`, if characterized.
    pub fn vppmin_memo(&self) -> Option<(f64, u64)> {
        self.vppmin_memo
    }

    /// Records the result of a completed V_PPmin search: the minimum
    /// operable `V_PP` and the number of descending-ladder steps the search
    /// took to find it.
    pub fn set_vppmin_memo(&mut self, vpp_min: f64, steps: u64) {
        self.vppmin_memo = Some((vpp_min, steps));
    }

    /// Produces a fresh, pristine module — behaviorally identical to
    /// constructing one from the same `(spec, seed, geometry)`.
    pub fn instantiate(&self) -> DramModule {
        self.pristine.clone()
    }
}

/// Flips contributed by a word's weak-cluster cell, if any.
#[allow(clippy::too_many_arguments)]
fn cluster_flips(
    params: &RowParams,
    retention: &physics::RetentionProfile,
    vpp_min: f64,
    rseed: u64,
    phys: u32,
    word: u32,
    current: u64,
    elapsed_s: f64,
    temp: f64,
    vpp: f64,
    charge_penalty: f64,
) -> u64 {
    let scale =
        retention.temperature_scale(temp) * retention.vpp_scale(vpp) * charge_penalty.powi(2);
    let scale_min = retention.vpp_scale(vpp_min);
    let mut flips = 0u64;
    for (band_s, words) in [
        (0.064, &params.cluster64_words),
        (0.128, &params.cluster128_words),
    ] {
        if !words.contains(&word) {
            continue;
        }
        let wseed = hash::combine(rseed, SALT_CLUSTER ^ word as u64);
        let bit = (hash::splitmix64(wseed) % 64) as u32;
        // Base retention at 80 °C/nominal V_PP chosen so the cell fails
        // inside (band/2, band] at V_PPmin but survives `band` at
        // nominal V_PP.
        let base_s =
            band_s / scale_min.max(1e-9) * hash::uniform(hash::combine(wseed, 0xF00D), 0.76, 0.98);
        let effective = base_s * scale;
        if elapsed_s >= effective {
            // The weak cell shares the array's true-/anti-cell layout, so
            // the per-row worst-case checkerboard phase charges it — a
            // flip occurs when it stores its charged polarity.
            let stored = (current >> bit) & 1;
            let polarity = ((bit ^ phys) & 1) as u64;
            if stored == polarity {
                flips |= 1 << bit;
            }
        }
    }
    flips
}

/// Calibrates the mean of the exponential per-row `HC_first` spread so the
/// expected module BER at HC = 300 K and nominal `V_PP` matches the Table 3
/// record.
fn calibrate_eta_mean(spec: &ModuleSpec, sigma: f64, z_n: f64) -> f64 {
    let a = (300_000.0f64.ln() - spec.hc_first_nominal.ln()) / sigma - z_n;
    let target = spec.ber_nominal;
    let expected_ber = |mean: f64| -> f64 {
        // E_u[Φ(a − η/σ)], η = −mean·ln(u), over a quadrature grid.
        let n = 256;
        let mut acc = 0.0;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            let eta = -mean * u.ln();
            acc += hash::normal_cdf(a - eta / sigma);
        }
        acc / n as f64
    };
    // Φ(a) is the zero-spread BER; if the target exceeds it, no spread is
    // the best we can do.
    if expected_ber(0.0) <= target {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0f64, 8.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if expected_ber(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;
    use crate::registry::{self, ModuleId};

    fn small_module(id: ModuleId, seed: u64) -> DramModule {
        DramModule::with_geometry(registry::spec(id), seed, Geometry::small_test()).unwrap()
    }

    fn pattern_row(module: &DramModule, word: u64) -> Vec<u64> {
        vec![word; module.geometry().columns_per_row as usize]
    }

    #[test]
    fn set_vpp_enforces_limits() {
        let mut m = small_module(ModuleId::A0, 1);
        assert!(m.set_vpp(2.5).is_ok());
        assert!(m.set_vpp(1.4).is_ok()); // A0's V_PPmin
        assert!(matches!(
            m.set_vpp(1.3),
            Err(DramError::CommunicationLost { .. })
        ));
        assert!(matches!(
            m.set_vpp(3.5),
            Err(DramError::VoltageOutOfRange { .. })
        ));
        assert!(matches!(
            m.set_vpp(0.2),
            Err(DramError::VoltageOutOfRange { .. })
        ));
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut m = small_module(ModuleId::B3, 7);
        let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
        m.write_row(0, 10, &data).unwrap();
        let back = m.read_row(0, 10, 13.5).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn protocol_violations_are_rejected() {
        let mut m = small_module(ModuleId::A0, 1);
        assert!(matches!(
            m.read(0, 0, 13.5),
            Err(DramError::IllegalCommand { .. })
        ));
        m.activate(0, 5).unwrap();
        assert!(matches!(
            m.activate(0, 6),
            Err(DramError::IllegalCommand { .. })
        ));
        m.precharge(0, 35.0).unwrap();
        assert!(matches!(
            m.precharge(0, 35.0),
            Err(DramError::IllegalCommand { .. })
        ));
        assert!(matches!(
            m.activate(0, 1 << 30),
            Err(DramError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn hammering_flips_bits_in_neighbors() {
        let mut m = small_module(ModuleId::B0, 3); // weakest module: HC_first 7.9K
        let victim = 100;
        let (below, above) = m.mapping().physical_neighbors(victim);
        let (below, above) = (below.unwrap(), above.unwrap());
        // Use the victim's charged-aligned checkerboard for worst case.
        let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
        let inv = pattern_row(&m, !0xAAAA_AAAA_AAAA_AAAAu64);
        m.write_row(0, victim, &data).unwrap();
        m.write_row(0, below, &inv).unwrap();
        m.write_row(0, above, &inv).unwrap();
        // Double-sided hammer at 300K per aggressor.
        m.hammer(0, below, 300_000, 48.5).unwrap();
        m.hammer(0, above, 300_000, 48.5).unwrap();
        let back = m.read_row(0, victim, 13.5).unwrap();
        let flips: u32 = back
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!(flips > 0, "expected RowHammer flips on the weakest module");
        // Determinism: the same module re-instantiated flips the same cells.
        let mut m2 = small_module(ModuleId::B0, 3);
        m2.write_row(0, victim, &data).unwrap();
        m2.write_row(0, below, &inv).unwrap();
        m2.write_row(0, above, &inv).unwrap();
        m2.hammer(0, below, 300_000, 48.5).unwrap();
        m2.hammer(0, above, 300_000, 48.5).unwrap();
        assert_eq!(m2.read_row(0, victim, 13.5).unwrap(), back);
    }

    #[test]
    fn no_flips_without_hammering() {
        let mut m = small_module(ModuleId::B0, 3);
        let data = pattern_row(&m, 0x5555_5555_5555_5555);
        m.write_row(0, 50, &data).unwrap();
        // Immediately read back: no disturbance, negligible retention.
        let back = m.read_row(0, 50, 13.5).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn rewriting_a_row_clears_accumulated_disturbance() {
        let mut m = small_module(ModuleId::B0, 3);
        let victim = 100;
        let (below, above) = m.mapping().physical_neighbors(victim);
        let (below, above) = (below.unwrap(), above.unwrap());
        let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
        m.write_row(0, victim, &data).unwrap();
        m.write_row(0, below, &data).unwrap();
        m.write_row(0, above, &data).unwrap();
        m.hammer(0, below, 150_000, 48.5).unwrap();
        m.hammer(0, above, 150_000, 48.5).unwrap();
        // Re-initialize the victim: restores charge and clears disturbance.
        m.write_row(0, victim, &data).unwrap();
        m.hammer(0, below, 1_000, 48.5).unwrap();
        m.hammer(0, above, 1_000, 48.5).unwrap();
        let back = m.read_row(0, victim, 13.5).unwrap();
        assert_eq!(back, data, "1K hammers after re-init must not flip");
    }

    #[test]
    fn more_hammers_flip_more_cells() {
        let mut total = [0u32; 2];
        for (i, hc) in [50_000u64, 300_000].into_iter().enumerate() {
            let mut m = small_module(ModuleId::B0, 11);
            let victim = 200;
            let (below, above) = m.mapping().physical_neighbors(victim);
            let (below, above) = (below.unwrap(), above.unwrap());
            let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
            m.write_row(0, victim, &data).unwrap();
            m.write_row(0, below, &data).unwrap();
            m.write_row(0, above, &data).unwrap();
            m.hammer(0, below, hc, 48.5).unwrap();
            m.hammer(0, above, hc, 48.5).unwrap();
            let back = m.read_row(0, victim, 13.5).unwrap();
            total[i] = back
                .iter()
                .zip(&data)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
        }
        assert!(
            total[1] > total[0],
            "300K hammers ({}) must flip more than 50K ({})",
            total[1],
            total[0]
        );
    }

    #[test]
    fn reduced_vpp_reduces_hammer_flips_on_typical_module() {
        // B3 is the paper's strongest responder: BER at V_PPmin is 0.40× the
        // nominal BER.
        let mut flips = Vec::new();
        for vpp in [2.5, 1.6] {
            let mut m = small_module(ModuleId::B3, 5);
            m.set_vpp(vpp).unwrap();
            let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
            let mut count = 0u32;
            for victim in (10..200u32).step_by(7) {
                let (below, above) = m.mapping().physical_neighbors(victim);
                let (below, above) = (below.unwrap(), above.unwrap());
                m.write_row(0, victim, &data).unwrap();
                m.write_row(0, below, &data).unwrap();
                m.write_row(0, above, &data).unwrap();
                m.hammer(0, below, 300_000, 48.5).unwrap();
                m.hammer(0, above, 300_000, 48.5).unwrap();
                let back = m.read_row(0, victim, 13.5).unwrap();
                count += back
                    .iter()
                    .zip(&data)
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum::<u32>();
            }
            flips.push(count);
        }
        assert!(
            flips[1] < flips[0],
            "B3 flips at 1.6 V ({}) must be below 2.5 V ({})",
            flips[1],
            flips[0]
        );
    }

    #[test]
    fn retention_flips_appear_after_long_waits_at_80c() {
        let mut m = small_module(ModuleId::C2, 9);
        m.set_temperature_c(80.0);
        let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
        let mut flips_by_wait = Vec::new();
        for wait_s in [0.064f64, 16.0] {
            let mut total = 0u32;
            for row in (0..160u32).step_by(5) {
                m.write_row(0, row, &data).unwrap();
            }
            m.advance_ns(wait_s * 1e9);
            for row in (0..160u32).step_by(5) {
                let back = m.read_row(0, row, 13.5).unwrap();
                total += back
                    .iter()
                    .zip(&data)
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum::<u32>();
            }
            flips_by_wait.push(total);
        }
        assert_eq!(flips_by_wait[0], 0, "no retention failures at 64 ms");
        assert!(
            flips_by_wait[1] > 0,
            "expected retention failures after 16 s at 80 °C"
        );
    }

    #[test]
    fn retention_is_safe_during_rowhammer_windows_at_50c() {
        let mut m = small_module(ModuleId::C2, 9);
        m.set_temperature_c(50.0);
        let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
        m.write_row(0, 77, &data).unwrap();
        m.advance_ns(30e6); // 30 ms: the paper's test-window bound
        let back = m.read_row(0, 77, 13.5).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn trcd_violation_corrupts_reads_transiently() {
        let mut m = small_module(ModuleId::A0, 1);
        let data = pattern_row(&m, 0x0F0F_0F0F_0F0F_0F0F);
        m.write_row(0, 30, &data).unwrap();
        // Far below any plausible requirement: reads corrupt.
        let bad = m.read_row(0, 30, 3.0).unwrap();
        let flips: u32 = bad
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!(flips > 0, "t_RCD = 3 ns must corrupt");
        // But the stored data is untouched: a nominal read is clean.
        let good = m.read_row(0, 30, 13.5).unwrap();
        assert_eq!(good, data);
    }

    #[test]
    fn trcd_requirement_rises_at_low_vpp_for_a0() {
        let mut m = small_module(ModuleId::A0, 1);
        let data = pattern_row(&m, 0x0F0F_0F0F_0F0F_0F0F);
        m.write_row(0, 40, &data).unwrap();
        // At nominal V_PP, 13.5 ns is reliable.
        assert_eq!(m.read_row(0, 40, 13.5).unwrap(), data);
        // At V_PPmin = 1.4 V, A0 needs ~24 ns: 13.5 ns now corrupts...
        m.set_vpp(1.4).unwrap();
        let bad = m.read_row(0, 40, 13.5).unwrap();
        assert_ne!(bad, data, "nominal t_RCD must fail at V_PPmin on A0");
        // ...and 24 ns is reliable again.
        assert_eq!(m.read_row(0, 40, 24.0).unwrap(), data);
    }

    #[test]
    fn oracle_matches_table3_direction() {
        let mut m = small_module(ModuleId::B3, 77);
        // Average oracle multiplier at V_PPmin across rows should be near the
        // module target of 1.271.
        let mut acc = 0.0;
        let n = 200;
        for row in 0..n {
            acc += m.oracle_hc_multiplier(0, row, 1.6);
        }
        let mean = acc / n as f64;
        assert!(
            (mean - 1.271).abs() < 0.12,
            "mean oracle multiplier {mean} vs target 1.271"
        );
    }

    #[test]
    fn hc_first_oracle_min_near_module_spec() {
        let mut m = small_module(ModuleId::B0, 123);
        let min = (0..512u32)
            .map(|r| m.oracle_hc_first_nominal(0, r))
            .fold(f64::INFINITY, f64::min);
        // 512 rows only sample the spread partially; the minimum must sit
        // within a small factor of the module's 7.9K record.
        assert!(min >= 7.9e3 * 0.99, "min {min} below module record");
        assert!(min < 7.9e3 * 2.5, "min {min} far above module record");
    }

    #[test]
    fn refresh_resets_retention_clock() {
        let mut m = small_module(ModuleId::C2, 9);
        m.set_temperature_c(80.0);
        let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
        for row in 0..40u32 {
            m.write_row(0, row, &data).unwrap();
        }
        // Refresh every 4 s for 16 s total: refreshes keep rows alive where a
        // single 16 s wait would flip (statistically).
        for _ in 0..4 {
            m.advance_ns(4.0 * 1e9);
            m.refresh();
        }
        let mut flips_refreshed = 0u32;
        for row in 0..40u32 {
            let back = m.read_row(0, row, 13.5).unwrap();
            flips_refreshed += back
                .iter()
                .zip(&data)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum::<u32>();
        }
        // Same wait without refresh.
        let mut m2 = small_module(ModuleId::C2, 9);
        m2.set_temperature_c(80.0);
        for row in 0..40u32 {
            m2.write_row(0, row, &data).unwrap();
        }
        m2.advance_ns(16.0 * 1e9);
        let mut flips_unrefreshed = 0u32;
        for row in 0..40u32 {
            let back = m2.read_row(0, row, 13.5).unwrap();
            flips_unrefreshed += back
                .iter()
                .zip(&data)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum::<u32>();
        }
        assert!(
            flips_refreshed < flips_unrefreshed,
            "refreshed {flips_refreshed} vs unrefreshed {flips_unrefreshed}"
        );
    }

    #[test]
    fn reseed_noise_decouples_results_from_history() {
        // Two modules of the same specimen, one with extra prior activity.
        // After rebasing both noise streams onto the same chunk seed, the
        // same measurement sequence must produce identical readouts even
        // though their histories differ.
        let run = |prior_hammers: u64| -> Vec<u64> {
            let mut m = small_module(ModuleId::B0, 3);
            let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
            let inv = pattern_row(&m, !0xAAAA_AAAA_AAAA_AAAAu64);
            if prior_hammers > 0 {
                m.write_row(0, 40, &data).unwrap();
                m.hammer(0, 41, prior_hammers, 48.5).unwrap();
            }
            m.reseed_noise(crate::hash::chunk_seed(3, 0, 7));
            let victim = 100;
            let (below, above) = m.mapping().physical_neighbors(victim);
            let (below, above) = (below.unwrap(), above.unwrap());
            m.write_row(0, victim, &data).unwrap();
            m.write_row(0, below, &inv).unwrap();
            m.write_row(0, above, &inv).unwrap();
            m.hammer(0, below, 300_000, 48.5).unwrap();
            m.hammer(0, above, 300_000, 48.5).unwrap();
            m.read_row(0, victim, 13.5).unwrap()
        };
        assert_eq!(run(0), run(120_000));
        // Different chunk seeds give a different (still deterministic) run.
        let mut m = small_module(ModuleId::B0, 3);
        m.reseed_noise(crate::hash::chunk_seed(3, 0, 8));
        let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
        let inv = pattern_row(&m, !0xAAAA_AAAA_AAAA_AAAAu64);
        let victim = 100;
        let (below, above) = m.mapping().physical_neighbors(victim);
        let (below, above) = (below.unwrap(), above.unwrap());
        m.write_row(0, victim, &data).unwrap();
        m.write_row(0, below, &inv).unwrap();
        m.write_row(0, above, &inv).unwrap();
        m.hammer(0, below, 300_000, 48.5).unwrap();
        m.hammer(0, above, 300_000, 48.5).unwrap();
        let other = m.read_row(0, victim, 13.5).unwrap();
        assert_ne!(other, run(0), "distinct chunk streams must differ");
    }

    #[test]
    fn set_vpp_boundary_semantics_are_pinned() {
        let mut m = small_module(ModuleId::A0, 1); // V_PPmin = 1.4 V
                                                   // Absolute maximum rating is inclusive; a hair above is rejected.
        assert!(m.set_vpp(physics::VPP_ABSOLUTE_MAX).is_ok());
        assert!(matches!(
            m.set_vpp(physics::VPP_ABSOLUTE_MAX + 1e-9),
            Err(DramError::VoltageOutOfRange { .. })
        ));
        // Absolute minimum is inside the supply range (no VoltageOutOfRange)
        // but below every module's V_PPmin, so the module stops responding.
        assert!(matches!(
            m.set_vpp(physics::VPP_ABSOLUTE_MIN),
            Err(DramError::CommunicationLost { .. })
        ));
        assert!(matches!(
            m.set_vpp(physics::VPP_ABSOLUTE_MIN - 1e-9),
            Err(DramError::VoltageOutOfRange { .. })
        ));
        // The module V_PPmin edge: exact value works, and so does a value
        // within the supply's 1 mV tolerance band below it...
        let vmin = m.spec().vpp_min;
        assert!(m.set_vpp(vmin).is_ok());
        assert!(m.set_vpp(vmin - 1e-6).is_ok());
        // ...but anything clearly below V_PPmin loses the module.
        assert!(matches!(
            m.set_vpp(vmin - 2e-6),
            Err(DramError::CommunicationLost { .. })
        ));
    }

    #[test]
    fn blueprint_instantiation_matches_fresh_construction() {
        let bp =
            ModuleBlueprint::with_geometry(registry::spec(ModuleId::B0), 3, Geometry::small_test())
                .unwrap();
        let run = |mut m: DramModule| -> Vec<u64> {
            let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
            let inv = pattern_row(&m, !0xAAAA_AAAA_AAAA_AAAAu64);
            let victim = 100;
            let (below, above) = m.mapping().physical_neighbors(victim);
            let (below, above) = (below.unwrap(), above.unwrap());
            m.write_row(0, victim, &data).unwrap();
            m.write_row(0, below, &inv).unwrap();
            m.write_row(0, above, &inv).unwrap();
            m.hammer(0, below, 300_000, 48.5).unwrap();
            m.hammer(0, above, 300_000, 48.5).unwrap();
            m.read_row(0, victim, 13.5).unwrap()
        };
        let fresh = run(small_module(ModuleId::B0, 3));
        assert_eq!(run(bp.instantiate()), fresh);
        // Instantiation is repeatable: a second clone is equally pristine.
        assert_eq!(run(bp.instantiate()), fresh);
    }

    #[test]
    fn reset_to_pristine_matches_fresh_instantiation() {
        // One reset-equivalence check per vendor, so all three TRR policies
        // get rebuilt and re-verified.
        for id in [ModuleId::A0, ModuleId::B0, ModuleId::C0] {
            let bp = ModuleBlueprint::with_geometry(registry::spec(id), 3, Geometry::small_test())
                .unwrap();
            let run = |m: &mut DramModule| -> Vec<u64> {
                let data = pattern_row(m, 0xAAAA_AAAA_AAAA_AAAA);
                let inv = pattern_row(m, !0xAAAA_AAAA_AAAA_AAAAu64);
                let victim = 100;
                let (below, above) = m.mapping().physical_neighbors(victim);
                let (below, above) = (below.unwrap(), above.unwrap());
                m.write_row(0, victim, &data).unwrap();
                m.write_row(0, below, &inv).unwrap();
                m.write_row(0, above, &inv).unwrap();
                m.hammer(0, below, 300_000, 48.5).unwrap();
                m.hammer(0, above, 300_000, 48.5).unwrap();
                m.read_row(0, victim, 13.5).unwrap()
            };
            let mut fresh = bp.instantiate();
            let reference = run(&mut fresh);

            // Dirty a module thoroughly — rail, temperature, noise stream,
            // row state in two banks — then reset and rerun.
            let mut recycled = bp.instantiate();
            let _ = run(&mut recycled);
            recycled.set_vpp(2.4).unwrap();
            recycled.set_temperature_c(80.0);
            recycled.reseed_noise(0xDEAD_BEEF);
            let _ = recycled.read_row(1, 7, 13.5).unwrap();
            recycled.reset_to_pristine();
            assert_eq!(run(&mut recycled), reference, "module {id:?}");

            // Resets are repeatable.
            recycled.reset_to_pristine();
            assert_eq!(run(&mut recycled), reference, "module {id:?}, second reset");
        }
    }

    #[test]
    fn vppmin_memo_round_trips_and_survives_clone() {
        let mut bp =
            ModuleBlueprint::with_geometry(registry::spec(ModuleId::B3), 3, Geometry::small_test())
                .unwrap();
        assert_eq!(bp.vppmin_memo(), None);
        bp.set_vppmin_memo(1.6, 10);
        assert_eq!(bp.vppmin_memo(), Some((1.6, 10)));
        assert_eq!(bp.clone().vppmin_memo(), Some((1.6, 10)));
    }

    #[test]
    fn prepare_rows_changes_no_results() {
        let run = |prepare: bool| -> Vec<u64> {
            let mut m = small_module(ModuleId::B0, 3);
            let victim = 100;
            if prepare {
                m.prepare_rows(0, &[victim]);
            }
            let data = pattern_row(&m, 0xAAAA_AAAA_AAAA_AAAA);
            let inv = pattern_row(&m, !0xAAAA_AAAA_AAAA_AAAAu64);
            let (below, above) = m.mapping().physical_neighbors(victim);
            let (below, above) = (below.unwrap(), above.unwrap());
            m.write_row(0, victim, &data).unwrap();
            m.write_row(0, below, &inv).unwrap();
            m.write_row(0, above, &inv).unwrap();
            m.hammer(0, below, 300_000, 48.5).unwrap();
            m.hammer(0, above, 300_000, 48.5).unwrap();
            m.read_row(0, victim, 13.5).unwrap()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn uninitialized_rows_read_deterministic_garbage() {
        let mut m1 = small_module(ModuleId::A3, 4);
        let mut m2 = small_module(ModuleId::A3, 4);
        let a = m1.read_row(0, 123, 13.5).unwrap();
        let b = m2.read_row(0, 123, 13.5).unwrap();
        assert_eq!(a, b);
        let mut m3 = small_module(ModuleId::A3, 5);
        let c = m3.read_row(0, 123, 13.5).unwrap();
        assert_ne!(a, c, "different specimen, different power-on content");
    }
}
