//! Shared deterministic fork-join scheduler.
//!
//! One scheduler for every embarrassingly-parallel loop in the workspace:
//! the study execution engine (`hammervolt-core::exec`) and the SPICE
//! Monte-Carlo batcher (`hammervolt-spice`) both fan work out through
//! [`parallel_map`] / [`parallel_map_with`], so scheduling semantics —
//! ordered results, atomic work claiming, panic propagation — live in
//! exactly one place.
//!
//! Both entry points guarantee that the result vector is ordered by input
//! index regardless of which worker computed which item, which is the
//! foundation of the workspace-wide "byte-identical for any worker count"
//! invariant: as long as `f` is a pure function of the item (and, for
//! [`parallel_map_with`], of a workspace whose state is fully re-initialized
//! per item), output cannot depend on scheduling.
//!
//! The pool also hands observability context across the fork: the caller's
//! active metric scope (`hammervolt_obs::scope`) is captured before workers
//! spawn and re-entered on each worker thread, so per-job counter
//! attribution survives the fan-out exactly like cross-thread span
//! parenting does. This is a pure side channel — it cannot affect claiming
//! order or results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A cooperative cancellation token shared between a controller and the
/// workers of a fork-join region.
///
/// Cancellation is *cooperative*: setting the token never interrupts an
/// in-flight item — workers observe it between items and simply stop
/// claiming new ones. An item therefore either runs to completion or never
/// starts, which is what lets the execution engine persist chunk
/// checkpoints without ever writing a torn entry.
///
/// Tokens are cheap to clone (an `Arc` around one atomic) and sticky: once
/// cancelled, a token stays cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; workers observe it at the next
    /// item boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Resolves a job count: `0` means one worker per available CPU.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning results
/// in input order.
///
/// Workers claim item indices from a shared atomic counter, so load
/// balances automatically; each worker accumulates `(index, result)` pairs
/// locally and the batches are stitched back into input order at the end —
/// no per-item locking. `jobs <= 1` (or a single item) degrades to a plain
/// serial map on the calling thread.
///
/// # Panics
///
/// Propagates a panic from `f` after all workers have stopped.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, jobs, || (), |(), item| f(item))
}

/// Like [`parallel_map`], but each worker thread owns a mutable workspace
/// built by `init`, passed to every `f` call that worker makes.
///
/// This is the batching primitive: `init` clones a pristine solver
/// workspace (scratch matrices, trace buffers, a template circuit) once per
/// worker, and the per-item calls reuse it allocation-free. For ordered
/// results to stay schedule-independent, `f` must fully re-initialize any
/// workspace state it reads — an item's result must not depend on which
/// items the same worker processed before it.
///
/// # Panics
///
/// Propagates a panic from `init` or `f` after all workers have stopped.
pub fn parallel_map_with<T, R, W, I, F>(items: &[T], jobs: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, &T) -> R + Sync,
{
    run_pool(items, jobs, None, init, f).expect("uncancellable map cannot be cancelled")
}

/// Like [`parallel_map_with`], but workers stop claiming new items once
/// `cancel` fires. Returns `None` if the region was cancelled before every
/// item completed (already-computed results are dropped — persist durable
/// side effects inside `f` if partial progress must survive); `Some` with
/// the full ordered result vector otherwise.
///
/// Cancellation is cooperative per item: an in-flight `f` call always runs
/// to completion, so `f`'s side effects are never torn.
///
/// # Panics
///
/// Propagates a panic from `init` or `f` after all workers have stopped.
pub fn parallel_map_cancellable_with<T, R, W, I, F>(
    items: &[T],
    jobs: usize,
    cancel: &CancelToken,
    init: I,
    f: F,
) -> Option<Vec<R>>
where
    T: Sync,
    R: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, &T) -> R + Sync,
{
    run_pool(items, jobs, Some(cancel), init, f)
}

/// The one worker-pool implementation behind both entry points: atomic
/// index claiming, per-worker result batches, optional cooperative
/// cancellation.
fn run_pool<T, R, W, I, F>(
    items: &[T],
    jobs: usize,
    cancel: Option<&CancelToken>,
    init: I,
    f: F,
) -> Option<Vec<R>>
where
    T: Sync,
    R: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, &T) -> R + Sync,
{
    let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
    let jobs = resolve_jobs(jobs).min(items.len().max(1));
    if jobs <= 1 {
        let mut ws = init();
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            if cancelled() {
                return None;
            }
            out.push(f(&mut ws, item));
        }
        return Some(out);
    }
    // Capture the caller's metric scope (if any) so worker threads record
    // under the same per-job label set as the thread that forked them.
    let metric_scope = hammervolt_obs::scope::current();
    let next = AtomicUsize::new(0);
    let batches: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let _scope_guard = metric_scope.as_ref().map(hammervolt_obs::scope::enter);
                    let mut ws = init();
                    let mut mine = Vec::new();
                    loop {
                        if cancelled() {
                            return mine;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return mine;
                        }
                        mine.push((i, f(&mut ws, &items[i])));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    if cancelled() {
        return None;
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, result) in batches.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
        slots[i] = Some(result);
    }
    Some(
        slots
            .into_iter()
            .map(|slot| slot.expect("every index is claimed exactly once"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..37).collect();
        let doubled = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(parallel_map(&items, 1, |&x| x + 1).len(), 37);
        assert!(parallel_map(&Vec::<u64>::new(), 8, |&x: &u64| x).is_empty());
    }

    #[test]
    fn workspace_variant_initializes_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map_with(
            &items,
            3,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |acc, &x| {
                *acc += 1; // workspace is genuinely mutable and persistent
                x + 1
            },
        );
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
        let n = inits.load(Ordering::Relaxed);
        assert!((1..=3).contains(&n), "one init per worker, got {n}");
    }

    #[test]
    fn workspace_results_are_order_stable_across_job_counts() {
        let items: Vec<u64> = (0..101).collect();
        let reference = parallel_map_with(&items, 1, || (), |(), &x| x * x);
        for jobs in [2, 4, 8] {
            assert_eq!(
                parallel_map_with(&items, jobs, || (), |(), &x| x * x),
                reference
            );
        }
    }

    #[test]
    fn cancellable_map_without_cancel_matches_plain_map() {
        let items: Vec<u64> = (0..23).collect();
        let token = CancelToken::new();
        let out = parallel_map_cancellable_with(&items, 4, &token, || (), |(), &x| x * 3);
        assert_eq!(out, Some(items.iter().map(|x| x * 3).collect::<Vec<_>>()));
    }

    #[test]
    fn cancelled_before_start_returns_none_without_running_items() {
        let ran = AtomicUsize::new(0);
        let token = CancelToken::new();
        token.cancel();
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 4] {
            let out = parallel_map_cancellable_with(
                &items,
                jobs,
                &token,
                || (),
                |(), &x| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    x
                },
            );
            assert_eq!(out, None, "jobs={jobs}");
        }
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no item may start");
    }

    #[test]
    fn cancel_mid_run_stops_claiming_but_never_tears_items() {
        // Serial pool: deterministic — cancellation fired from inside item 5
        // completes that item, then stops the region before item 6.
        let token = CancelToken::new();
        let completed = Mutex::new(Vec::new());
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map_cancellable_with(
            &items,
            1,
            &token,
            || (),
            |(), &x| {
                if x == 5 {
                    token.cancel();
                }
                completed.lock().unwrap().push(x);
                x
            },
        );
        assert_eq!(out, None);
        assert_eq!(*completed.lock().unwrap(), (0..=5).collect::<Vec<u64>>());

        // Parallel pool: the cancelling item still completes (cooperative,
        // never torn) and the region reports cancellation.
        let token = CancelToken::new();
        let completed = Mutex::new(Vec::new());
        let out = parallel_map_cancellable_with(
            &items,
            3,
            &token,
            || (),
            |(), &x| {
                if x == 5 {
                    token.cancel();
                }
                completed.lock().unwrap().push(x);
                x
            },
        );
        assert_eq!(out, None);
        assert!(
            completed.lock().unwrap().contains(&5),
            "the cancelling item completes"
        );
    }

    #[test]
    fn cancel_token_is_sticky_and_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        b.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn metric_scope_propagates_to_every_worker() {
        let scope = hammervolt_obs::scope::Scope::new(&[("job_id", "par-test")]);
        let _g = hammervolt_obs::scope::enter(&scope);
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, 4, |&x| {
            hammervolt_obs::scope::record_counter("par_test_scope_units", 1);
            x
        });
        assert_eq!(out, items);
        assert_eq!(
            scope.counter_value("par_test_scope_units"),
            32,
            "every worker must attribute to the forking thread's scope"
        );
    }

    #[test]
    fn zero_jobs_resolves_to_available_cpus() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(5), 5);
        // and parallel_map with jobs=0 still completes correctly
        let items: Vec<u64> = (0..10).collect();
        assert_eq!(parallel_map(&items, 0, |&x| x), items);
    }
}
