//! Property-based tests for the test-infrastructure model.

use hammervolt_dram::geometry::Geometry;
use hammervolt_dram::module::DramModule;
use hammervolt_dram::registry::{self, ModuleId};
use hammervolt_dram::timing::TimingParams;
use hammervolt_softmc::power::{Interposer, PowerSupply};
use hammervolt_softmc::program::{Op, Program};
use hammervolt_softmc::{Instruction, SoftMc};
use proptest::prelude::*;

fn session() -> SoftMc {
    let module =
        DramModule::with_geometry(registry::spec(ModuleId::A3), 3, Geometry::small_test()).unwrap();
    SoftMc::new(module)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn supply_quantizes_to_millivolts(v in 0.0..6.0f64) {
        let mut s = PowerSupply::new();
        s.set_volts(v).unwrap();
        let q = s.setpoint();
        prop_assert!((q - v).abs() <= 0.0005 + 1e-12);
        prop_assert!((q * 1000.0 - (q * 1000.0).round()).abs() < 1e-9);
    }

    #[test]
    fn shunt_always_blocks_live_supply(v in 0.001..6.0f64) {
        let interposer = Interposer::new();
        let mut supply = PowerSupply::new();
        supply.set_volts(v).unwrap();
        supply.output_on();
        prop_assert!(interposer.rail_volts(2.5, &supply).is_err());
    }

    #[test]
    fn command_counts_match_execution(rows in prop::collection::vec(2u32..400, 1..6)) {
        // Running init programs issues exactly the commands the static
        // counter predicts (no hidden commands).
        let mut mc = session();
        let columns = mc.module().geometry().columns_per_row;
        for &row in &rows {
            let p = Program::init_row(0, row, columns, 0xFF);
            prop_assert_eq!(p.command_count(), columns as u64 + 2);
            mc.run(&p).unwrap();
        }
    }

    #[test]
    fn write_read_round_trip_via_programs(row in 2u32..400, word in any::<u64>()) {
        let mut mc = session();
        mc.init_row(0, row, word).unwrap();
        let data = mc.read_row(0, row).unwrap();
        prop_assert!(data.iter().all(|&w| w == word));
    }

    #[test]
    fn hammer_time_scales_linearly(hc in 1_000u64..100_000) {
        let mut mc = session();
        let start = mc.module().now_ns();
        mc.hammer_double_sided(0, 10, 12, hc).unwrap();
        let elapsed = mc.module().now_ns() - start;
        let period = TimingParams::default().act_pre_period_ns();
        prop_assert!((elapsed - 2.0 * hc as f64 * period).abs() < 1e-3);
    }

    #[test]
    fn nested_loops_execute(count_outer in 1u64..4, count_inner in 1u64..4, row in 2u32..200) {
        let mut mc = session();
        let mut p = Program::new();
        p.push_loop(
            count_outer,
            vec![Op::Loop {
                count: count_inner,
                body: vec![
                    Op::Inst(Instruction::Act { bank: 0, row }),
                    Op::Inst(Instruction::Pre { bank: 0 }),
                    Op::Inst(Instruction::Wait { ns: 1.0 }),
                ],
            }],
        );
        mc.run(&p).unwrap();
        // the bank is left precharged: another ACT must succeed
        let mut p2 = Program::new();
        p2.push(Instruction::Act { bank: 0, row });
        p2.push(Instruction::Pre { bank: 0 });
        prop_assert!(mc.run(&p2).is_ok());
    }
}
