//! Compiled program plans: loop-coalesced macro-ops with pre-resolved shape.
//!
//! Interpreting a [`Program`] costs one dispatch plus one timing calculation
//! per DDR4 instruction — for a whole-row initialization that is 1026
//! heap-allocated [`Op`]s walked word by word. A [`CompiledPlan`] lowers the
//! program once into a handful of *macro-ops*: a whole-row write becomes one
//! [`PlanOp::InitRow`], a whole-row read one [`PlanOp::ReadRow`], and a pure
//! hammer loop one [`PlanOp::Hammer`], each executed by the engine with
//! closed-form slot timing and the device's bulk row operations. Shapes the
//! lowerer does not recognize fall back to per-instruction [`PlanOp::Inst`]
//! elements executed through the exact interpreted path, so a compiled plan
//! is *observably equivalent* to interpreting the program it was compiled
//! from: identical read data, identical device clock, identical command mix,
//! identical failure points.
//!
//! Plans are also the unit of *interning*: the host keeps one plan per
//! program shape and patches only the row/count/data parameters between
//! executions (see [`crate::host::SoftMc`]), so the steady-state measurement
//! loops of Algs. 1–3 never rebuild an op vector.

use crate::inst::Instruction;
use crate::program::{Op, Program};

/// One lowered plan element.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// ACT + `columns` same-word writes on columns `0..columns` + PRE.
    InitRow {
        /// Target bank.
        bank: u32,
        /// Target row (logical address).
        row: u32,
        /// Number of sequential columns written.
        columns: u32,
        /// The word written to every column.
        word: u64,
    },
    /// ACT + one write per data word on columns `0..data.len()` + PRE.
    WriteRun {
        /// Target bank.
        bank: u32,
        /// Target row (logical address).
        row: u32,
        /// Per-column data, column-major from 0.
        data: Vec<u64>,
    },
    /// ACT + `columns` sequential reads on columns `0..columns` + PRE.
    ReadRow {
        /// Target bank.
        bank: u32,
        /// Target row (logical address).
        row: u32,
        /// Number of sequential columns read.
        columns: u32,
    },
    /// A coalesced hammer loop: `count` passes over (bank, row) ACT–PRE
    /// pairs. Identical to the interpreter's coalesced execution.
    Hammer {
        /// Loop iteration count.
        count: u64,
        /// The (bank, row) of each ACT–PRE pair in body order.
        pairs: Vec<(u32, u32)>,
    },
    /// A single instruction, executed through the per-instruction path.
    Inst(Instruction),
    /// A counted loop over a lowered body (shapes the hammer coalescer
    /// rejects run genuinely per iteration, exactly as interpreted).
    Loop {
        /// Iteration count.
        count: u64,
        /// Lowered loop body.
        body: Vec<PlanOp>,
    },
}

/// A lowered, execution-ready program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledPlan {
    /// Lowered ops in execution order.
    pub(crate) ops: Vec<PlanOp>,
}

impl CompiledPlan {
    /// Lowers a program into macro-ops. Pure: no device or geometry
    /// knowledge is needed; shapes that turn out invalid at execution time
    /// (e.g. more columns than the geometry has) are executed through the
    /// per-instruction fallback with interpreted semantics.
    pub fn compile(program: &Program) -> Self {
        CompiledPlan {
            ops: lower(&program.ops),
        }
    }

    /// The lowered ops (for inspection in tests).
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    // --- interned templates -------------------------------------------------
    //
    // One-op plans mirroring the `Program` builders. The host constructs
    // each once and re-patches its parameters per execution.

    /// A whole-row initialization plan (Alg. 1's `initialize_row`).
    pub fn init_row(bank: u32, row: u32, columns: u32, word: u64) -> Self {
        CompiledPlan {
            ops: vec![PlanOp::InitRow {
                bank,
                row,
                columns,
                word,
            }],
        }
    }

    /// A whole-row readback plan.
    pub fn read_row(bank: u32, row: u32, columns: u32) -> Self {
        CompiledPlan {
            ops: vec![PlanOp::ReadRow { bank, row, columns }],
        }
    }

    /// A hammer plan over explicit (bank, row) pairs.
    pub fn hammer(count: u64, pairs: Vec<(u32, u32)>) -> Self {
        CompiledPlan {
            ops: vec![PlanOp::Hammer { count, pairs }],
        }
    }

    /// An idle-wait plan (Alg. 3's retention window).
    pub fn wait(ns: f64) -> Self {
        CompiledPlan {
            ops: vec![PlanOp::Inst(Instruction::Wait { ns })],
        }
    }

    // --- parameter patching -------------------------------------------------

    /// Re-points an interned [`CompiledPlan::init_row`] plan at new
    /// parameters without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the plan is not an init-row template.
    pub fn patch_init_row(&mut self, bank: u32, row: u32, columns: u32, word: u64) {
        match self.ops.as_mut_slice() {
            [PlanOp::InitRow {
                bank: b,
                row: r,
                columns: c,
                word: w,
            }] => {
                *b = bank;
                *r = row;
                *c = columns;
                *w = word;
            }
            _ => panic!("patch_init_row on a non-init-row plan"),
        }
    }

    /// Re-points an interned [`CompiledPlan::read_row`] plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan is not a read-row template.
    pub fn patch_read_row(&mut self, bank: u32, row: u32, columns: u32) {
        match self.ops.as_mut_slice() {
            [PlanOp::ReadRow {
                bank: b,
                row: r,
                columns: c,
            }] => {
                *b = bank;
                *r = row;
                *c = columns;
            }
            _ => panic!("patch_read_row on a non-read-row plan"),
        }
    }

    /// Re-points an interned [`CompiledPlan::hammer`] plan: the pair list is
    /// overwritten in place (it must have the same length as the template's).
    ///
    /// # Panics
    ///
    /// Panics if the plan is not a hammer template or the pair count
    /// differs.
    pub fn patch_hammer(&mut self, count: u64, pairs: &[(u32, u32)]) {
        match self.ops.as_mut_slice() {
            [PlanOp::Hammer {
                count: c,
                pairs: ps,
            }] if ps.len() == pairs.len() => {
                *c = count;
                ps.copy_from_slice(pairs);
            }
            _ => panic!("patch_hammer shape mismatch"),
        }
    }

    /// Re-points an interned [`CompiledPlan::wait`] plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan is not a wait template.
    pub fn patch_wait(&mut self, ns: f64) {
        match self.ops.as_mut_slice() {
            [PlanOp::Inst(Instruction::Wait { ns: n })] => *n = ns,
            _ => panic!("patch_wait on a non-wait plan"),
        }
    }
}

/// Recognizes a loop body consisting purely of (ACT row, PRE) pairs on one
/// bank — the hammer shape that can be coalesced. Shared with the
/// interpreter so both paths coalesce exactly the same programs.
pub(crate) fn hammer_pairs(body: &[Op]) -> Option<Vec<(u32, u32)>> {
    if body.is_empty() || !body.len().is_multiple_of(2) {
        return None;
    }
    let mut pairs = Vec::with_capacity(body.len() / 2);
    for chunk in body.chunks(2) {
        match (&chunk[0], &chunk[1]) {
            (
                Op::Inst(Instruction::Act { bank: ab, row }),
                Op::Inst(Instruction::Pre { bank: pb }),
            ) if ab == pb => pairs.push((*ab, *row)),
            _ => return None,
        }
    }
    Some(pairs)
}

/// Lowers a flat op slice.
fn lower(ops: &[Op]) -> Vec<PlanOp> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        match &ops[i] {
            Op::Loop { count, body } => {
                if let Some(pairs) = hammer_pairs(body) {
                    out.push(PlanOp::Hammer {
                        count: *count,
                        pairs,
                    });
                } else {
                    out.push(PlanOp::Loop {
                        count: *count,
                        body: lower(body),
                    });
                }
                i += 1;
            }
            Op::Inst(Instruction::Act { bank, row }) => {
                if let Some((op, consumed)) = lower_burst(*bank, *row, &ops[i..]) {
                    out.push(op);
                    i += consumed;
                } else {
                    out.push(PlanOp::Inst(Instruction::Act {
                        bank: *bank,
                        row: *row,
                    }));
                    i += 1;
                }
            }
            Op::Inst(inst) => {
                out.push(PlanOp::Inst(*inst));
                i += 1;
            }
        }
    }
    out
}

/// Tries to recognize `ACT; (WR | RD) on sequential columns 0..n; PRE` on
/// one bank starting at `ops[0]` (the ACT). Returns the macro-op and the
/// number of program ops it covers. Requires `n ≥ 1`; mixed or
/// out-of-sequence accesses are rejected (the caller falls back to
/// per-instruction lowering).
fn lower_burst(bank: u32, row: u32, ops: &[Op]) -> Option<(PlanOp, usize)> {
    enum Kind {
        Writes(Vec<u64>),
        Reads(u32),
    }
    let mut kind: Option<Kind> = None;
    let mut j = 1;
    loop {
        match ops.get(j)? {
            Op::Inst(Instruction::Wr {
                bank: wb,
                column,
                data,
            }) if *wb == bank => match &mut kind {
                None if *column == 0 => kind = Some(Kind::Writes(vec![*data])),
                Some(Kind::Writes(words)) if *column as usize == words.len() => {
                    words.push(*data);
                }
                _ => return None,
            },
            Op::Inst(Instruction::Rd { bank: rb, column }) if *rb == bank => match &mut kind {
                None if *column == 0 => kind = Some(Kind::Reads(1)),
                Some(Kind::Reads(n)) if *column == *n => *n += 1,
                _ => return None,
            },
            Op::Inst(Instruction::Pre { bank: pb }) if *pb == bank => {
                let op = match kind? {
                    Kind::Writes(words) => {
                        if let Some(&first) = words.first() {
                            if words.iter().all(|&w| w == first) {
                                PlanOp::InitRow {
                                    bank,
                                    row,
                                    columns: words.len() as u32,
                                    word: first,
                                }
                            } else {
                                PlanOp::WriteRun {
                                    bank,
                                    row,
                                    data: words,
                                }
                            }
                        } else {
                            return None;
                        }
                    }
                    Kind::Reads(columns) => PlanOp::ReadRow { bank, row, columns },
                };
                return Some((op, j + 1));
            }
            _ => return None,
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_row_lowers_to_one_macro_op() {
        let p = Program::init_row(1, 7, 512, 0xAA);
        let plan = CompiledPlan::compile(&p);
        assert_eq!(
            plan.ops(),
            &[PlanOp::InitRow {
                bank: 1,
                row: 7,
                columns: 512,
                word: 0xAA
            }]
        );
    }

    #[test]
    fn read_row_lowers_to_one_macro_op() {
        let p = Program::read_row(0, 3, 1024);
        let plan = CompiledPlan::compile(&p);
        assert_eq!(
            plan.ops(),
            &[PlanOp::ReadRow {
                bank: 0,
                row: 3,
                columns: 1024
            }]
        );
    }

    #[test]
    fn hammer_loop_lowers_to_hammer_op() {
        let p = Program::hammer_double_sided(0, 10, 12, 5000);
        let plan = CompiledPlan::compile(&p);
        assert_eq!(
            plan.ops(),
            &[PlanOp::Hammer {
                count: 5000,
                pairs: vec![(0, 10), (0, 12)]
            }]
        );
    }

    #[test]
    fn non_uniform_init_becomes_write_run() {
        let mut p = Program::new();
        p.push(Instruction::Act { bank: 0, row: 2 });
        p.push(Instruction::Wr {
            bank: 0,
            column: 0,
            data: 1,
        });
        p.push(Instruction::Wr {
            bank: 0,
            column: 1,
            data: 2,
        });
        p.push(Instruction::Pre { bank: 0 });
        let plan = CompiledPlan::compile(&p);
        assert_eq!(
            plan.ops(),
            &[PlanOp::WriteRun {
                bank: 0,
                row: 2,
                data: vec![1, 2]
            }]
        );
    }

    #[test]
    fn out_of_sequence_columns_fall_back_to_instructions() {
        let mut p = Program::new();
        p.push(Instruction::Act { bank: 0, row: 2 });
        p.push(Instruction::Rd { bank: 0, column: 1 }); // not column 0
        p.push(Instruction::Pre { bank: 0 });
        let plan = CompiledPlan::compile(&p);
        assert_eq!(plan.ops().len(), 3);
        assert!(plan.ops().iter().all(|op| matches!(op, PlanOp::Inst(_))));
    }

    #[test]
    fn bare_act_pre_is_not_a_burst() {
        let mut p = Program::new();
        p.push(Instruction::Act { bank: 0, row: 2 });
        p.push(Instruction::Pre { bank: 0 });
        let plan = CompiledPlan::compile(&p);
        assert_eq!(plan.ops().len(), 2);
    }

    #[test]
    fn odd_loop_body_is_not_coalesced() {
        let mut p = Program::new();
        p.push_loop(
            10,
            vec![
                Op::Inst(Instruction::Act { bank: 0, row: 1 }),
                Op::Inst(Instruction::Pre { bank: 0 }),
                Op::Inst(Instruction::Wait { ns: 0.0 }),
            ],
        );
        let plan = CompiledPlan::compile(&p);
        match &plan.ops()[0] {
            PlanOp::Loop { count, body } => {
                assert_eq!(*count, 10);
                assert_eq!(body.len(), 3);
            }
            other => panic!("expected uncoalesced loop, got {other:?}"),
        }
    }

    #[test]
    fn patching_preserves_shape_without_realloc() {
        let mut plan = CompiledPlan::init_row(0, 0, 8, 0);
        plan.patch_init_row(1, 42, 8, 0x55);
        assert_eq!(
            plan.ops(),
            &[PlanOp::InitRow {
                bank: 1,
                row: 42,
                columns: 8,
                word: 0x55
            }]
        );
        let mut h = CompiledPlan::hammer(0, vec![(0, 0), (0, 0)]);
        h.patch_hammer(300, &[(0, 9), (0, 11)]);
        assert_eq!(
            h.ops(),
            &[PlanOp::Hammer {
                count: 300,
                pairs: vec![(0, 9), (0, 11)]
            }]
        );
    }

    #[test]
    #[should_panic(expected = "patch_hammer shape mismatch")]
    fn hammer_patch_rejects_length_change() {
        let mut h = CompiledPlan::hammer(0, vec![(0, 0)]);
        h.patch_hammer(1, &[(0, 1), (0, 2)]);
    }
}
