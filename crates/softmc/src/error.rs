//! Error type for the test infrastructure.

use hammervolt_dram::DramError;
use std::fmt;

/// Errors produced by the SoftMC-style infrastructure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SoftMcError {
    /// The device under test rejected a command or stopped responding.
    Device(DramError),
    /// The interposer's shunt resistor is still in place: the external
    /// supply cannot drive the `V_PP` rail (§4.1).
    ShuntInstalled,
    /// The requested voltage is outside the supply's output range.
    SupplyRange {
        /// Requested output voltage (V).
        requested: f64,
        /// Supply maximum (V).
        max: f64,
    },
    /// The thermal controller could not settle within tolerance.
    ThermalUnsettled {
        /// Target temperature (°C).
        target_c: f64,
        /// Achieved steady-state error (°C).
        error_c: f64,
    },
    /// A program is malformed (e.g. a read with no preceding activate where
    /// the engine cannot infer the open row).
    BadProgram {
        /// Description of the defect.
        reason: String,
    },
}

impl fmt::Display for SoftMcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoftMcError::Device(e) => write!(f, "device error: {e}"),
            SoftMcError::ShuntInstalled => write!(
                f,
                "V_PP shunt resistor still installed: remove it before attaching the external supply"
            ),
            SoftMcError::SupplyRange { requested, max } => {
                write!(f, "supply cannot output {requested:.3} V (max {max:.3} V)")
            }
            SoftMcError::ThermalUnsettled { target_c, error_c } => write!(
                f,
                "temperature controller failed to settle at {target_c:.1} °C (error {error_c:.2} °C)"
            ),
            SoftMcError::BadProgram { reason } => write!(f, "bad program: {reason}"),
        }
    }
}

impl std::error::Error for SoftMcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SoftMcError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DramError> for SoftMcError {
    fn from(e: DramError) -> Self {
        SoftMcError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_device_errors_with_source() {
        let e = SoftMcError::from(DramError::CommunicationLost {
            requested_vpp: 1.3,
            vpp_min: 1.4,
        });
        assert!(e.to_string().contains("device error"));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }

    #[test]
    fn display_variants() {
        assert!(SoftMcError::ShuntInstalled.to_string().contains("shunt"));
        assert!(SoftMcError::SupplyRange {
            requested: 7.0,
            max: 6.0
        }
        .to_string()
        .contains("7.000"));
        assert!(SoftMcError::BadProgram {
            reason: "read before activate".to_string()
        }
        .to_string()
        .contains("read before activate"));
    }
}
