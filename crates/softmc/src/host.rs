//! The top-level test session: device + supply + interposer + thermal.
//!
//! [`SoftMc`] is the object the study methodology drives. Its constructor
//! performs the paper's §4.1 bring-up: remove the interposer shunt, attach
//! the external supply at nominal `V_PP`, and settle the thermal loop at
//! 50 °C. Voltage changes go through the supply (1 mV quantization) and the
//! interposer, then to the device — which stops responding below its
//! `V_PPmin`, making [`SoftMc::find_vppmin`] the exact §4.1 procedure:
//! "gradually reduce `V_PP` with 0.1 V steps until the lowest `V_PP` at which
//! the DRAM module can successfully communicate with the FPGA".

use crate::engine::{Engine, EngineScratch};
use crate::error::SoftMcError;
use crate::plan::CompiledPlan;
use crate::power::{CurrentMeter, Interposer, PowerSupply};
use crate::program::Program;
use crate::thermal::{SettleReport, TemperatureController};
use hammervolt_dram::physics::VPP_NOMINAL;
use hammervolt_dram::timing::TimingParams;

/// Conservative ACT→RD latency used by support operations (ns).
///
/// Real SoftMC test programs leave generous margins on every timing that is
/// *not* under test, so that e.g. a RowHammer measurement at reduced `V_PP`
/// is not polluted by activation-latency failures (§4.1's interference
/// isolation). 30 ns covers the worst requirement of any Table 3 module at
/// its `V_PPmin` (24 ns for Mfr. A) with margin.
pub const CONSERVATIVE_T_RCD_NS: f64 = 30.0;
use hammervolt_dram::{DramError, DramModule};

/// Interned compiled plans, one per program shape the study methodology
/// issues. The convenience methods patch only the row/count/data parameters
/// between executions, so the Alg. 1 binary search and the Alg. 2/3 sweeps
/// never rebuild an op vector — a whole measurement step reuses these plans
/// plus the session's scratch buffers and touches the heap not at all.
#[derive(Debug)]
struct PlanCache {
    init_row: CompiledPlan,
    read_row: CompiledPlan,
    hammer_pair: CompiledPlan,
    hammer_single: CompiledPlan,
    wait: CompiledPlan,
}

impl PlanCache {
    fn new() -> Self {
        PlanCache {
            init_row: CompiledPlan::init_row(0, 0, 1, 0),
            read_row: CompiledPlan::read_row(0, 0, 1),
            hammer_pair: CompiledPlan::hammer(0, vec![(0, 0), (0, 0)]),
            hammer_single: CompiledPlan::hammer(0, vec![(0, 0)]),
            wait: CompiledPlan::wait(0.0),
        }
    }
}

/// The shell side of a freshly brought-up session — everything around the
/// module: supply, interposer, thermal loop, current meter, plus the
/// temperature the 50 °C settle achieved. Every component is `Copy`, so the
/// snapshot taken at the end of [`SoftMc::new`] can be replayed by
/// [`SoftMc::recycle`] without re-running bring-up.
#[derive(Debug, Clone, Copy)]
struct ShellSnapshot {
    supply: PowerSupply,
    interposer: Interposer,
    thermal: TemperatureController,
    meter: CurrentMeter,
    settled_temp_c: f64,
}

/// A live test session over one module.
#[derive(Debug)]
pub struct SoftMc {
    module: DramModule,
    timing: TimingParams,
    supply: PowerSupply,
    interposer: Interposer,
    thermal: TemperatureController,
    meter: CurrentMeter,
    plans: PlanCache,
    scratch: EngineScratch,
    /// Readback buffer shared by every session operation: scratch reads
    /// return a slice of it, and non-read operations use it as the engine's
    /// (empty) read sink.
    readback: Vec<u64>,
    /// The shell state right after bring-up, replayed on [`SoftMc::recycle`].
    shell: ShellSnapshot,
}

impl SoftMc {
    /// Brings up a module on the test infrastructure: shunt removed, external
    /// supply at the nominal 2.5 V, thermal loop settled at 50 °C, nominal
    /// timings.
    pub fn new(module: DramModule) -> Self {
        let mut mc = SoftMc {
            module,
            timing: TimingParams::default(),
            supply: PowerSupply::new(),
            interposer: Interposer::new(),
            thermal: TemperatureController::default(),
            meter: CurrentMeter::default(),
            plans: PlanCache::new(),
            scratch: EngineScratch::new(),
            readback: Vec::new(),
            shell: ShellSnapshot {
                supply: PowerSupply::new(),
                interposer: Interposer::new(),
                thermal: TemperatureController::default(),
                meter: CurrentMeter::default(),
                settled_temp_c: 50.0,
            },
        };
        mc.interposer.remove_shunt();
        mc.supply
            .set_volts(VPP_NOMINAL)
            .expect("nominal V_PP is within supply range");
        mc.supply.output_on();
        mc.module
            .set_vpp(VPP_NOMINAL)
            .expect("nominal V_PP accepted");
        let report = mc.thermal.settle_to(50.0);
        mc.module.set_temperature_c(report.final_c);
        mc.shell = ShellSnapshot {
            supply: mc.supply,
            interposer: mc.interposer,
            thermal: mc.thermal,
            meter: mc.meter,
            settled_temp_c: report.final_c,
        };
        mc
    }

    /// Rolls the whole session back to its just-brought-up state: the shell
    /// snapshot is replayed, timings return to nominal, and the module is
    /// reset to pristine in O(touched rows). Interned compiled plans and
    /// engine scratch are deliberately kept — they carry no cross-run state
    /// (every parameter is patched before use, every buffer cleared) — so a
    /// recycled session also skips plan recompilation.
    ///
    /// After this call the session is indistinguishable from
    /// `SoftMc::new(blueprint.instantiate())` for the same blueprint.
    pub fn recycle(&mut self) {
        self.supply = self.shell.supply;
        self.interposer = self.shell.interposer;
        self.thermal = self.shell.thermal;
        self.meter = self.shell.meter;
        self.timing = TimingParams::default();
        self.module.reset_to_pristine();
        self.module.set_temperature_c(self.shell.settled_temp_c);
    }

    /// The device under test.
    pub fn module(&self) -> &DramModule {
        &self.module
    }

    /// Mutable access to the device under test (for oracle queries in
    /// validation code).
    pub fn module_mut(&mut self) -> &mut DramModule {
        &mut self.module
    }

    /// Consumes the session, returning the module.
    pub fn into_module(self) -> DramModule {
        self.module
    }

    /// Current timing parameters.
    pub fn timing(&self) -> TimingParams {
        self.timing
    }

    /// Replaces the timing parameters (Alg. 2 sweeps `t_RCD` this way).
    pub fn set_timing(&mut self, timing: TimingParams) {
        self.timing = timing;
    }

    /// Current `V_PP` at the device.
    pub fn vpp(&self) -> f64 {
        self.module.vpp()
    }

    /// The external supply's programmed setpoint (V).
    pub fn supply_setpoint(&self) -> f64 {
        self.supply.setpoint()
    }

    /// Samples the interposer current meter: average `I_PP` since the last
    /// sample (§4.1's current-measurement capability).
    pub fn measure_vpp_current(&mut self) -> f64 {
        self.meter.sample(
            self.module.total_activations(),
            self.module.now_ns(),
            self.module.vpp(),
        )
    }

    /// Drives `V_PP` through the supply/interposer to the device.
    ///
    /// # Errors
    ///
    /// Fails if the supply cannot produce the voltage, the shunt is
    /// installed, or the module stops responding (below `V_PPmin`). On a
    /// device failure the supply is restored to the previous working level.
    pub fn set_vpp(&mut self, vpp: f64) -> Result<(), SoftMcError> {
        let previous = self.supply.setpoint();
        self.supply.set_volts(vpp)?;
        let rail = self.interposer.rail_volts(VPP_NOMINAL, &self.supply)?;
        match self.module.set_vpp(rail) {
            Ok(()) => Ok(()),
            Err(e) => {
                // restore the last working level so the session stays usable
                self.supply
                    .set_volts(previous)
                    .expect("previous setpoint was valid");
                let _ = self
                    .module
                    .set_vpp(self.interposer.rail_volts(VPP_NOMINAL, &self.supply)?);
                Err(e.into())
            }
        }
    }

    /// §4.1's `V_PPmin` search: from nominal downward in 0.1 V steps until
    /// the module stops responding; returns the lowest working level and
    /// leaves the module there.
    ///
    /// # Errors
    ///
    /// Fails if even nominal `V_PP` is rejected.
    pub fn find_vppmin(&mut self) -> Result<f64, SoftMcError> {
        let mut span = hammervolt_obs::Span::begin("softmc.find_vppmin");
        let (last_good, steps) = self.vppmin_ladder()?;
        self.set_vpp(last_good)?;
        hammervolt_obs::counter_add!("softmc_vppmin_searches", 1);
        hammervolt_obs::counter_add!("softmc_vppmin_steps", steps);
        span.field_u64("steps", steps);
        Ok(last_good)
    }

    /// One-shot per-module `V_PPmin` characterization: runs the §4.1 ladder,
    /// then restores the session to `VPP_NOMINAL` — the single place the
    /// post-search restore lives, so callers that memoize the result and
    /// callers that search fresh end in the same state.
    ///
    /// Deliberately emits no counters or spans: the caller records the
    /// search (via [`SoftMc::record_vppmin_search`]) once per consuming
    /// unit, keeping the observability stream identical whether the value
    /// was memoized or recomputed.
    ///
    /// Returns `(V_PPmin, ladder steps)`.
    ///
    /// # Errors
    ///
    /// Fails if even nominal `V_PP` is rejected.
    pub fn calibrate_vppmin(&mut self) -> Result<(f64, u64), SoftMcError> {
        let result = self.vppmin_ladder()?;
        self.set_vpp(VPP_NOMINAL)?;
        Ok(result)
    }

    /// Replays the observability footprint of one `V_PPmin` search — the
    /// span and the `softmc_vppmin_searches`/`softmc_vppmin_steps` counters
    /// — without touching the rail. Units consuming a memoized search call
    /// this so manifests count one search per unit exactly as before
    /// memoization.
    pub fn record_vppmin_search(&mut self, steps: u64) {
        let mut span = hammervolt_obs::Span::begin("softmc.find_vppmin");
        hammervolt_obs::counter_add!("softmc_vppmin_searches", 1);
        hammervolt_obs::counter_add!("softmc_vppmin_steps", steps);
        span.field_u64("steps", steps);
    }

    /// The raw §4.1 descending ladder: from nominal downward in 0.1 V steps
    /// until the module stops responding. Leaves the session at the last
    /// *probed* level; callers settle it (at `V_PPmin` or nominal) and
    /// handle observability.
    fn vppmin_ladder(&mut self) -> Result<(f64, u64), SoftMcError> {
        self.set_vpp(VPP_NOMINAL)?;
        let mut last_good = VPP_NOMINAL;
        let mut step: u64 = 1;
        loop {
            let next = VPP_NOMINAL - 0.1 * step as f64;
            if next < 0.5 {
                break;
            }
            match self.set_vpp(next) {
                Ok(()) => last_good = self.vpp(),
                Err(SoftMcError::Device(DramError::CommunicationLost { .. })) => break,
                Err(other) => return Err(other),
            }
            step += 1;
        }
        Ok((last_good, step))
    }

    /// Settles the thermal loop at a new target and applies the achieved
    /// temperature to the device.
    ///
    /// # Errors
    ///
    /// Fails if the loop cannot hold the FT200's ±0.1 °C precision.
    pub fn set_temperature(&mut self, target_c: f64) -> Result<SettleReport, SoftMcError> {
        let report = self.thermal.settle_to(target_c);
        if !report.within_precision() {
            return Err(SoftMcError::ThermalUnsettled {
                target_c,
                error_c: report.final_c - target_c,
            });
        }
        self.module.set_temperature_c(report.final_c);
        Ok(report)
    }

    /// Runs a program with the session's timing parameters.
    ///
    /// The program is compiled to a [`CompiledPlan`] and executed through
    /// the fast path (bit-identical to interpretation); callers issuing the
    /// standard study shapes should prefer the convenience methods, which
    /// reuse interned plans instead of compiling per call.
    ///
    /// # Errors
    ///
    /// Propagates program and device errors.
    pub fn run(&mut self, program: &Program) -> Result<Vec<u64>, SoftMcError> {
        let SoftMc {
            module,
            timing,
            scratch,
            ..
        } = self;
        Engine::with_scratch(module, *timing, scratch).run(program)
    }

    /// Runs a program through the per-instruction interpreter — the
    /// reference semantics of [`SoftMc::run`], kept for the
    /// compiled-vs-interpreted equivalence suite.
    ///
    /// # Errors
    ///
    /// Propagates program and device errors.
    pub fn run_interpreted(&mut self, program: &Program) -> Result<Vec<u64>, SoftMcError> {
        let SoftMc {
            module,
            timing,
            scratch,
            ..
        } = self;
        Engine::with_scratch(module, *timing, scratch).run_interpreted(program)
    }

    /// Runs an interned plan with the given timing, reads landing in the
    /// session readback buffer. The allocation-free core of every
    /// convenience method.
    fn run_cached(
        plan: &CompiledPlan,
        module: &mut DramModule,
        timing: TimingParams,
        scratch: &mut EngineScratch,
        readback: &mut Vec<u64>,
    ) -> Result<(), SoftMcError> {
        Engine::with_scratch(module, timing, scratch).run_plan(plan, readback)
    }

    /// Convenience: initialize a row with a repeated word (Alg. 1's
    /// `initialize_row`).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn init_row(&mut self, bank: u32, row: u32, word: u64) -> Result<(), SoftMcError> {
        let columns = self.module.geometry().columns_per_row;
        self.plans.init_row.patch_init_row(bank, row, columns, word);
        let SoftMc {
            module,
            timing,
            plans,
            scratch,
            readback,
            ..
        } = self;
        Self::run_cached(&plans.init_row, module, *timing, scratch, readback)
    }

    /// Reads a whole row into the session's readback buffer with the given
    /// timing parameters; the slice stays valid until the next session
    /// operation.
    fn read_row_into_readback(
        &mut self,
        bank: u32,
        row: u32,
        timing: TimingParams,
    ) -> Result<(), SoftMcError> {
        let columns = self.module.geometry().columns_per_row;
        self.plans.read_row.patch_read_row(bank, row, columns);
        let SoftMc {
            module,
            plans,
            scratch,
            readback,
            ..
        } = self;
        Self::run_cached(&plans.read_row, module, timing, scratch, readback)
    }

    /// Convenience: read a whole row with the session's timing parameters.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn read_row(&mut self, bank: u32, row: u32) -> Result<Vec<u64>, SoftMcError> {
        self.read_row_into_readback(bank, row, self.timing)?;
        Ok(self.readback.clone())
    }

    /// Allocation-free [`SoftMc::read_row`]: the returned slice borrows the
    /// session's readback buffer and stays valid until the next session
    /// operation.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn read_row_scratch(&mut self, bank: u32, row: u32) -> Result<&[u64], SoftMcError> {
        self.read_row_into_readback(bank, row, self.timing)?;
        Ok(&self.readback)
    }

    /// Allocation-free whole-row read with a one-shot `t_RCD` override —
    /// Alg. 2's probe read, without the save/override/restore dance on the
    /// session timing. Slice validity as for [`SoftMc::read_row_scratch`].
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn read_row_with_t_rcd_scratch(
        &mut self,
        bank: u32,
        row: u32,
        t_rcd_ns: f64,
    ) -> Result<&[u64], SoftMcError> {
        let timing = self.timing.with_t_rcd(t_rcd_ns);
        self.read_row_into_readback(bank, row, timing)?;
        Ok(&self.readback)
    }

    /// Reads a whole row with the conservative ACT→RD latency
    /// ([`CONSERVATIVE_T_RCD_NS`]), regardless of the session timing. Support
    /// reads in the study methodology use this so that activation-latency
    /// failures cannot pollute RowHammer or retention measurements.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn read_row_conservative(&mut self, bank: u32, row: u32) -> Result<Vec<u64>, SoftMcError> {
        self.read_row_conservative_scratch(bank, row)?;
        Ok(self.readback.clone())
    }

    /// Allocation-free [`SoftMc::read_row_conservative`]. Slice validity as
    /// for [`SoftMc::read_row_scratch`].
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn read_row_conservative_scratch(
        &mut self,
        bank: u32,
        row: u32,
    ) -> Result<&[u64], SoftMcError> {
        let timing = self
            .timing
            .with_t_rcd(CONSERVATIVE_T_RCD_NS.max(self.timing.t_rcd_ns));
        self.read_row_into_readback(bank, row, timing)?;
        Ok(&self.readback)
    }

    /// Convenience: the double-sided hammer of Alg. 1.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn hammer_double_sided(
        &mut self,
        bank: u32,
        aggressor_a: u32,
        aggressor_b: u32,
        hc: u64,
    ) -> Result<(), SoftMcError> {
        self.plans
            .hammer_pair
            .patch_hammer(hc, &[(bank, aggressor_a), (bank, aggressor_b)]);
        let SoftMc {
            module,
            timing,
            plans,
            scratch,
            readback,
            ..
        } = self;
        Self::run_cached(&plans.hammer_pair, module, *timing, scratch, readback)
    }

    /// Convenience: single-sided hammering (adjacency probing).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn hammer_single_sided(
        &mut self,
        bank: u32,
        aggressor: u32,
        hc: u64,
    ) -> Result<(), SoftMcError> {
        self.plans
            .hammer_single
            .patch_hammer(hc, &[(bank, aggressor)]);
        let SoftMc {
            module,
            timing,
            plans,
            scratch,
            readback,
            ..
        } = self;
        Self::run_cached(&plans.hammer_single, module, *timing, scratch, readback)
    }

    /// Convenience: idle wait (Alg. 3's retention window).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn wait_ns(&mut self, ns: f64) -> Result<(), SoftMcError> {
        self.plans.wait.patch_wait(ns);
        let SoftMc {
            module,
            timing,
            plans,
            scratch,
            readback,
            ..
        } = self;
        Self::run_cached(&plans.wait, module, *timing, scratch, readback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammervolt_dram::geometry::Geometry;
    use hammervolt_dram::registry::{self, ModuleId};

    fn session(id: ModuleId, seed: u64) -> SoftMc {
        let module =
            DramModule::with_geometry(registry::spec(id), seed, Geometry::small_test()).unwrap();
        SoftMc::new(module)
    }

    #[test]
    fn bring_up_settles_at_50c_and_nominal_vpp() {
        let mc = session(ModuleId::A0, 1);
        assert_eq!(mc.vpp(), 2.5);
        assert!((mc.module().temperature_c() - 50.0).abs() <= 0.1);
    }

    #[test]
    fn vppmin_search_matches_table3() {
        for (id, expected) in [
            (ModuleId::A0, 1.4),
            (ModuleId::A5, 2.4),
            (ModuleId::B3, 1.6),
            (ModuleId::C5, 1.5),
        ] {
            let mut mc = session(id, 9);
            let vppmin = mc.find_vppmin().unwrap();
            assert!(
                (vppmin - expected).abs() < 1e-9,
                "{id:?}: found {vppmin}, table says {expected}"
            );
            // the session is left at V_PPmin and still works
            assert_eq!(mc.vpp(), vppmin);
            mc.init_row(0, 3, 0xFF).unwrap();
        }
    }

    #[test]
    fn calibrate_vppmin_finds_the_same_level_but_ends_at_nominal() {
        // The ending-state contract: `find_vppmin` leaves the session at
        // V_PPmin (the §4.1 search semantics); `calibrate_vppmin` — the
        // memoization entry point — runs the same ladder but restores
        // nominal, so memoized and fresh bring-up end in the same state.
        for id in [ModuleId::A0, ModuleId::A5, ModuleId::B3, ModuleId::C5] {
            let mut searched = session(id, 9);
            let vppmin = searched.find_vppmin().unwrap();
            let mut calibrated = session(id, 9);
            let (calibrated_min, steps) = calibrated.calibrate_vppmin().unwrap();
            assert_eq!(calibrated_min, vppmin, "{id:?}");
            assert!(steps > 0, "{id:?}");
            assert_eq!(calibrated.vpp(), 2.5, "{id:?}: must end at nominal");
            assert_eq!(calibrated.supply_setpoint(), 2.5, "{id:?}");
            // and the session still works
            calibrated.init_row(0, 3, 0xFF).unwrap();
        }
    }

    #[test]
    fn recycled_session_matches_fresh_bring_up() {
        let bp = hammervolt_dram::ModuleBlueprint::with_geometry(
            registry::spec(ModuleId::B3),
            7,
            Geometry::small_test(),
        )
        .unwrap();
        let run = |mc: &mut SoftMc| -> Vec<u64> {
            mc.init_row(0, 100, 0xAAAA_AAAA_AAAA_AAAA).unwrap();
            mc.init_row(0, 99, 0x5555_5555_5555_5555).unwrap();
            mc.init_row(0, 101, 0x5555_5555_5555_5555).unwrap();
            mc.hammer_double_sided(0, 99, 101, 300_000).unwrap();
            mc.read_row(0, 100).unwrap()
        };
        let mut fresh = SoftMc::new(bp.instantiate());
        let reference = run(&mut fresh);

        // Dirty the session across every layer — rail, timing, thermal
        // loop, current meter, module rows — then recycle and rerun.
        let mut pooled = SoftMc::new(bp.instantiate());
        let _ = run(&mut pooled);
        pooled.find_vppmin().unwrap();
        pooled.set_temperature(80.0).unwrap();
        pooled.set_timing(TimingParams::default().with_t_rcd(8.0));
        let _ = pooled.measure_vpp_current();
        pooled.recycle();
        assert_eq!(pooled.vpp(), 2.5);
        assert!((pooled.module().temperature_c() - 50.0).abs() <= 0.1);
        assert_eq!(run(&mut pooled), reference);

        // Recycling is idempotent and repeatable.
        pooled.recycle();
        assert_eq!(run(&mut pooled), reference);
    }

    #[test]
    fn failed_vpp_restores_previous_level() {
        let mut mc = session(ModuleId::A5, 1); // V_PPmin = 2.4
        mc.set_vpp(2.4).unwrap();
        assert!(mc.set_vpp(2.0).is_err());
        assert_eq!(mc.vpp(), 2.4, "module must stay at the last working V_PP");
        assert_eq!(mc.supply_setpoint(), 2.4);
    }

    #[test]
    fn rows_round_trip_through_programs() {
        let mut mc = session(ModuleId::B3, 4);
        mc.init_row(0, 17, 0xCCCC_CCCC_CCCC_CCCC).unwrap();
        let data = mc.read_row(0, 17).unwrap();
        assert!(data.iter().all(|&w| w == 0xCCCC_CCCC_CCCC_CCCC));
    }

    #[test]
    fn hammer_session_stays_under_30ms() {
        // §4.1: each RowHammer experiment completes within 30 ms.
        let mut mc = session(ModuleId::B0, 2);
        let start = mc.module().now_ns();
        mc.hammer_double_sided(0, 10, 12, 300_000).unwrap();
        let elapsed_ms = (mc.module().now_ns() - start) * 1e-6;
        assert!(elapsed_ms < 30.0, "hammering took {elapsed_ms} ms");
    }

    #[test]
    fn temperature_retarget_for_retention_tests() {
        let mut mc = session(ModuleId::C1, 5);
        let report = mc.set_temperature(80.0).unwrap();
        assert!(report.within_precision());
        assert!((mc.module().temperature_c() - 80.0).abs() <= 0.1);
    }
}
