//! Loop-structured test programs.
//!
//! Real SoftMC test programs are small loop programs uploaded to the FPGA; a
//! hammer test is literally `LOOP n { ACT a1; PRE; ACT a2; PRE }`. [`Program`]
//! mirrors that shape, and the builder methods construct the exact access
//! patterns of the paper's Algorithms 1–3.

use crate::inst::Instruction;
use serde::{Deserialize, Serialize};

/// One program element: a single instruction or a counted loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// A single DDR4 instruction.
    Inst(Instruction),
    /// A counted loop over a body of elements.
    Loop {
        /// Iteration count.
        count: u64,
        /// Loop body.
        body: Vec<Op>,
    },
}

/// A complete test program.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    /// Program elements in execution order.
    pub ops: Vec<Op>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Appends a single instruction.
    pub fn push(&mut self, inst: Instruction) -> &mut Self {
        self.ops.push(Op::Inst(inst));
        self
    }

    /// Appends a counted loop.
    pub fn push_loop(&mut self, count: u64, body: Vec<Op>) -> &mut Self {
        self.ops.push(Op::Loop { count, body });
        self
    }

    /// Total number of DDR4 commands the program issues when executed
    /// (loops expanded).
    pub fn command_count(&self) -> u64 {
        fn count_ops(ops: &[Op]) -> u64 {
            ops.iter()
                .map(|op| match op {
                    Op::Inst(_) => 1,
                    Op::Loop { count, body } => count * count_ops(body),
                })
                .sum()
        }
        count_ops(&self.ops)
    }

    /// Program that initializes a whole row with a repeated data word:
    /// `initialize_row` of Alg. 1.
    pub fn init_row(bank: u32, row: u32, columns: u32, word: u64) -> Self {
        let mut p = Program::new();
        p.push(Instruction::Act { bank, row });
        for column in 0..columns {
            p.push(Instruction::Wr {
                bank,
                column,
                data: word,
            });
        }
        p.push(Instruction::Pre { bank });
        p
    }

    /// Program that reads a whole row back.
    pub fn read_row(bank: u32, row: u32, columns: u32) -> Self {
        let mut p = Program::new();
        p.push(Instruction::Act { bank, row });
        for column in 0..columns {
            p.push(Instruction::Rd { bank, column });
        }
        p.push(Instruction::Pre { bank });
        p
    }

    /// The double-sided hammer loop of Alg. 1: `hc` alternating
    /// activate–precharge pairs on the two aggressors.
    pub fn hammer_double_sided(bank: u32, aggressor_a: u32, aggressor_b: u32, hc: u64) -> Self {
        let mut p = Program::new();
        p.push_loop(
            hc,
            vec![
                Op::Inst(Instruction::Act {
                    bank,
                    row: aggressor_a,
                }),
                Op::Inst(Instruction::Pre { bank }),
                Op::Inst(Instruction::Act {
                    bank,
                    row: aggressor_b,
                }),
                Op::Inst(Instruction::Pre { bank }),
            ],
        );
        p
    }

    /// A single-sided hammer loop (used by the adjacency
    /// reverse-engineering probe).
    pub fn hammer_single_sided(bank: u32, aggressor: u32, hc: u64) -> Self {
        let mut p = Program::new();
        p.push_loop(
            hc,
            vec![
                Op::Inst(Instruction::Act {
                    bank,
                    row: aggressor,
                }),
                Op::Inst(Instruction::Pre { bank }),
            ],
        );
        p
    }

    /// The retention wait of Alg. 3.
    pub fn wait(ns: f64) -> Self {
        let mut p = Program::new();
        p.push(Instruction::Wait { ns });
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_count_expands_loops() {
        let p = Program::hammer_double_sided(0, 10, 12, 300_000);
        assert_eq!(p.command_count(), 4 * 300_000);
        let q = Program::init_row(0, 5, 1024, 0xAA);
        assert_eq!(q.command_count(), 1026);
        assert_eq!(Program::new().command_count(), 0);
    }

    #[test]
    fn nested_loops_multiply() {
        let mut p = Program::new();
        p.push_loop(
            3,
            vec![Op::Loop {
                count: 4,
                body: vec![Op::Inst(Instruction::Ref)],
            }],
        );
        assert_eq!(p.command_count(), 12);
    }

    #[test]
    fn init_row_shape() {
        let p = Program::init_row(1, 2, 4, 0x55);
        assert_eq!(p.ops.len(), 6); // ACT + 4×WR + PRE
        assert!(matches!(
            p.ops[0],
            Op::Inst(Instruction::Act { bank: 1, row: 2 })
        ));
        assert!(matches!(p.ops[5], Op::Inst(Instruction::Pre { bank: 1 })));
    }

    #[test]
    fn hammer_program_alternates_aggressors() {
        let p = Program::hammer_double_sided(0, 7, 9, 5);
        match &p.ops[0] {
            Op::Loop { count, body } => {
                assert_eq!(*count, 5);
                assert_eq!(body.len(), 4);
                assert!(matches!(body[0], Op::Inst(Instruction::Act { row: 7, .. })));
                assert!(matches!(body[2], Op::Inst(Instruction::Act { row: 9, .. })));
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn serde_round_trip() {
        let p = Program::hammer_single_sided(2, 42, 10);
        let json = serde_json::to_string(&p).unwrap();
        let back: Program = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
