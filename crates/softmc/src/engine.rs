//! The command engine: program execution against a device.
//!
//! The engine enforces the configured [`TimingParams`] the way a memory
//! controller does — inserting the ACT→RD (`t_RCD`), ACT→PRE (`t_RAS`), and
//! PRE→ACT (`t_RP`) delays — and issues commands on SoftMC's 1.5 ns slot
//! grid. Pure hammer loops (`LOOP n { ACT; PRE; ... }`) are *coalesced* into
//! the device's bulk-hammer operation: the result matches the unrolled
//! execution up to the device's cycle-to-cycle measurement noise
//! (disturbance is additive and the clock advances by the same total), but
//! runs in O(1) instead of O(n).

use crate::error::SoftMcError;
use crate::inst::Instruction;
use crate::program::{Op, Program};
use hammervolt_dram::timing::{TimingParams, COMMAND_SLOT_NS};
use hammervolt_dram::DramModule;
use hammervolt_obs::counter_add;

/// A program run's DDR4 command mix, tallied locally (plain integer adds on
/// the hot path) and flushed to the process-wide metrics registry once per
/// run. Coalesced hammer loops count their *logical* commands — `count ×
/// pairs` ACT/PRE each — so the mix reports what the device experienced,
/// not how the engine optimized it.
#[derive(Debug, Clone, Copy, Default)]
struct CmdMix {
    act: u64,
    pre: u64,
    rd: u64,
    wr: u64,
    refresh: u64,
    wait: u64,
}

/// Per-bank controller-side state.
#[derive(Debug, Clone, Copy, Default)]
struct BankTrack {
    /// Time of the last ACT, if the bank is open.
    act_at_ns: Option<f64>,
    /// Time of the last PRE.
    pre_at_ns: f64,
}

/// Executes programs against a device with timing enforcement.
#[derive(Debug)]
pub struct Engine<'d> {
    module: &'d mut DramModule,
    timing: TimingParams,
    banks: Vec<BankTrack>,
    /// Issue time of the previous command (bus occupancy: one command per
    /// 1.5 ns slot).
    last_cmd_ns: f64,
    /// Read data collected in program order.
    reads: Vec<u64>,
    /// Command tally for the current program run.
    mix: CmdMix,
}

impl<'d> Engine<'d> {
    /// Creates an engine over a device with the given timing parameters.
    pub fn new(module: &'d mut DramModule, timing: TimingParams) -> Self {
        let banks = vec![BankTrack::default(); module.geometry().banks as usize];
        let last_cmd_ns = module.now_ns() - COMMAND_SLOT_NS;
        Engine {
            module,
            timing,
            banks,
            last_cmd_ns,
            reads: Vec::new(),
            mix: CmdMix::default(),
        }
    }

    /// Runs a program to completion, returning all data read.
    ///
    /// # Errors
    ///
    /// Propagates device errors; the device clock reflects all commands
    /// issued up to the failure point.
    pub fn run(&mut self, program: &Program) -> Result<Vec<u64>, SoftMcError> {
        self.reads.clear();
        self.mix = CmdMix::default();
        let result = self.run_ops(&program.ops);
        self.flush_mix(&result);
        result?;
        Ok(std::mem::take(&mut self.reads))
    }

    /// Flushes the run's command tally to the metrics registry. Pure side
    /// channel: a handful of relaxed atomic adds when metrics are on, one
    /// atomic load when off.
    fn flush_mix(&self, result: &Result<(), SoftMcError>) {
        if !hammervolt_obs::metrics_enabled() {
            return;
        }
        counter_add!("softmc_programs", 1);
        counter_add!("softmc_act", self.mix.act);
        counter_add!("softmc_pre", self.mix.pre);
        counter_add!("softmc_rd", self.mix.rd);
        counter_add!("softmc_wr", self.mix.wr);
        counter_add!("softmc_ref", self.mix.refresh);
        counter_add!("softmc_wait", self.mix.wait);
        match result {
            Ok(()) => {}
            Err(SoftMcError::BadProgram { .. }) => counter_add!("softmc_bad_programs", 1),
            Err(_) => counter_add!("softmc_device_errors", 1),
        }
    }

    fn run_ops(&mut self, ops: &[Op]) -> Result<(), SoftMcError> {
        for op in ops {
            match op {
                Op::Inst(inst) => self.issue(*inst)?,
                Op::Loop { count, body } => {
                    if let Some(pairs) = Self::as_hammer_loop(body) {
                        self.run_hammer_loop(*count, &pairs)?;
                    } else {
                        for _ in 0..*count {
                            self.run_ops(body)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Recognizes a body consisting purely of (ACT row, PRE) pairs on one
    /// bank — the hammer shape that can be coalesced.
    fn as_hammer_loop(body: &[Op]) -> Option<Vec<(u32, u32)>> {
        if body.is_empty() || !body.len().is_multiple_of(2) {
            return None;
        }
        let mut pairs = Vec::with_capacity(body.len() / 2);
        for chunk in body.chunks(2) {
            match (&chunk[0], &chunk[1]) {
                (
                    Op::Inst(Instruction::Act { bank: ab, row }),
                    Op::Inst(Instruction::Pre { bank: pb }),
                ) if ab == pb => pairs.push((*ab, *row)),
                _ => return None,
            }
        }
        Some(pairs)
    }

    fn run_hammer_loop(&mut self, count: u64, pairs: &[(u32, u32)]) -> Result<(), SoftMcError> {
        let period = self.timing.act_pre_period_ns();
        let logical = count.saturating_mul(pairs.len() as u64);
        self.mix.act = self.mix.act.saturating_add(logical);
        self.mix.pre = self.mix.pre.saturating_add(logical);
        for &(bank, row) in pairs {
            // Close timing bookkeeping for the bank: hammering leaves it
            // precharged.
            self.module.hammer(bank, row, count, period)?;
            let track = &mut self.banks[bank as usize];
            track.act_at_ns = None;
            track.pre_at_ns = self.module.now_ns();
        }
        self.last_cmd_ns = self.module.now_ns();
        Ok(())
    }

    /// Advances the device clock to the issue slot of the next command: the
    /// later of the timing `constraint` and one command slot after the
    /// previous command. Command slots overlap timing waits, exactly as on a
    /// real controller — a PRE issues *at* `t_RAS`, not a slot after it.
    fn issue_slot(&mut self, constraint: f64) -> f64 {
        let t = (self.last_cmd_ns + COMMAND_SLOT_NS).max(constraint);
        let now = self.module.now_ns();
        if t > now {
            self.module.advance_ns(t - now);
        }
        self.last_cmd_ns = self.module.now_ns();
        self.last_cmd_ns
    }

    /// Issues one instruction with timing enforcement.
    fn issue(&mut self, inst: Instruction) -> Result<(), SoftMcError> {
        match inst {
            Instruction::Act { .. } => self.mix.act += 1,
            Instruction::Pre { .. } => self.mix.pre += 1,
            Instruction::Rd { .. } => self.mix.rd += 1,
            Instruction::Wr { .. } => self.mix.wr += 1,
            Instruction::Ref => self.mix.refresh += 1,
            Instruction::Wait { .. } => self.mix.wait += 1,
        }
        match inst {
            Instruction::Act { bank, row } => {
                let track = self.banks.get(bank as usize).copied().unwrap_or_default();
                // tRP: wait after the last precharge.
                let t = self.issue_slot(track.pre_at_ns + self.timing.t_rp_ns);
                self.module.activate(bank, row)?;
                if let Some(track) = self.banks.get_mut(bank as usize) {
                    track.act_at_ns = Some(t);
                }
            }
            Instruction::Pre { bank } => {
                let track = self.banks.get(bank as usize).copied().unwrap_or_default();
                let act_at = track.act_at_ns.ok_or_else(|| SoftMcError::BadProgram {
                    reason: format!("PRE on bank {bank} with no open row"),
                })?;
                // tRAS: the row must stay open long enough.
                let t = self.issue_slot(act_at + self.timing.t_ras_ns);
                self.module.precharge(bank, t - act_at)?;
                if let Some(track) = self.banks.get_mut(bank as usize) {
                    track.act_at_ns = None;
                    track.pre_at_ns = t;
                }
            }
            Instruction::Rd { bank, column } => {
                let track = self.banks.get(bank as usize).copied().unwrap_or_default();
                let act_at = track.act_at_ns.ok_or_else(|| SoftMcError::BadProgram {
                    reason: format!("RD on bank {bank} with no open row"),
                })?;
                // tRCD: this is the delay Alg. 2 sweeps.
                let t = self.issue_slot(act_at + self.timing.t_rcd_ns);
                let word = self.module.read(bank, column, t - act_at)?;
                self.reads.push(word);
            }
            Instruction::Wr { bank, column, data } => {
                let track = self.banks.get(bank as usize).copied().unwrap_or_default();
                let act_at = track.act_at_ns.ok_or_else(|| SoftMcError::BadProgram {
                    reason: format!("WR on bank {bank} with no open row"),
                })?;
                self.issue_slot(act_at + self.timing.t_rcd_ns);
                self.module.write(bank, column, data)?;
            }
            Instruction::Ref => {
                self.issue_slot(0.0);
                self.module.refresh();
                // tRFC for an 8 Gb DDR4 die is 350 ns.
                self.module.advance_ns(350.0);
                self.last_cmd_ns = self.module.now_ns();
            }
            Instruction::Wait { ns } => {
                self.module.advance_ns(ns);
                self.last_cmd_ns = self.module.now_ns();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammervolt_dram::geometry::Geometry;
    use hammervolt_dram::module::DramModule;
    use hammervolt_dram::registry::{self, ModuleId};

    fn module() -> DramModule {
        DramModule::with_geometry(registry::spec(ModuleId::B0), 3, Geometry::small_test()).unwrap()
    }

    #[test]
    fn init_and_read_round_trip() {
        let mut m = module();
        let cols = m.geometry().columns_per_row;
        let timing = TimingParams::default();
        let mut e = Engine::new(&mut m, timing);
        e.run(&Program::init_row(0, 5, cols, 0xAAAA_AAAA_AAAA_AAAA))
            .unwrap();
        let data = e.run(&Program::read_row(0, 5, cols)).unwrap();
        assert_eq!(data.len(), cols as usize);
        assert!(data.iter().all(|&w| w == 0xAAAA_AAAA_AAAA_AAAA));
    }

    #[test]
    fn timing_is_enforced() {
        let mut m = module();
        let timing = TimingParams::default();
        let mut e = Engine::new(&mut m, timing);
        let mut p = Program::new();
        p.push(Instruction::Act { bank: 0, row: 1 });
        p.push(Instruction::Rd { bank: 0, column: 0 });
        p.push(Instruction::Pre { bank: 0 });
        e.run(&p).unwrap();
        // The PRE issues exactly tRAS after the ACT.
        let elapsed = m.now_ns();
        assert!(elapsed >= timing.t_ras_ns, "elapsed = {elapsed}");
    }

    #[test]
    fn coalesced_hammer_advances_clock_like_unrolled() {
        let timing = TimingParams::default();
        // Coalesced: a loop of ACT/PRE pairs.
        let mut m1 = module();
        let t0 = {
            let mut e = Engine::new(&mut m1, timing);
            e.run(&Program::hammer_double_sided(0, 10, 12, 1_000))
                .unwrap();
            m1.now_ns()
        };
        // The coalesced clock must be the loop count times the period for
        // both aggressors.
        let expected = 2.0 * 1_000.0 * timing.act_pre_period_ns();
        assert!(
            (t0 - expected).abs() < 1e-6,
            "clock {t0} vs expected {expected}"
        );
    }

    #[test]
    fn coalesced_hammer_matches_unrolled_flips() {
        let timing = TimingParams::default();
        let cols = Geometry::small_test().columns_per_row;
        let run = |coalesce: bool| -> Vec<u64> {
            let mut m = module();
            let victim = 100;
            let (below, above) = m.mapping().physical_neighbors(victim);
            let (below, above) = (below.unwrap(), above.unwrap());
            let mut e = Engine::new(&mut m, timing);
            e.run(&Program::init_row(0, victim, cols, 0xAAAA_AAAA_AAAA_AAAA))
                .unwrap();
            e.run(&Program::init_row(0, below, cols, 0x5555_5555_5555_5555))
                .unwrap();
            e.run(&Program::init_row(0, above, cols, 0x5555_5555_5555_5555))
                .unwrap();
            if coalesce {
                e.run(&Program::hammer_double_sided(0, below, above, 60_000))
                    .unwrap();
            } else {
                // The same commands, but in a shape the coalescer rejects
                // (odd trailing op), forcing genuine per-iteration execution.
                let mut p = Program::new();
                p.push_loop(
                    60_000,
                    vec![
                        Op::Inst(Instruction::Act {
                            bank: 0,
                            row: below,
                        }),
                        Op::Inst(Instruction::Pre { bank: 0 }),
                        Op::Inst(Instruction::Act {
                            bank: 0,
                            row: above,
                        }),
                        Op::Inst(Instruction::Pre { bank: 0 }),
                        Op::Inst(Instruction::Wait { ns: 0.0 }),
                    ],
                );
                e.run(&p).unwrap();
            }
            e.run(&Program::read_row(0, victim, cols)).unwrap()
        };
        // Flip *counts* must agree between coalesced and unrolled paths up
        // to the device's cycle-to-cycle noise (the coalesced path draws one
        // noise sample per bulk call; the unrolled path draws one per ACT).
        let expected = 0xAAAA_AAAA_AAAA_AAAAu64;
        let count =
            |v: &[u64]| -> f64 { v.iter().map(|w| (w ^ expected).count_ones() as f64).sum() };
        let a = count(&run(true));
        let b = count(&run(false));
        assert!(a > 0.0, "coalesced path must flip");
        assert!(b > 0.0, "unrolled path must flip");
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 1.6, "coalesced {a} vs unrolled {b} flips");
    }

    #[test]
    fn reads_before_activate_are_rejected() {
        let mut m = module();
        let mut e = Engine::new(&mut m, TimingParams::default());
        let mut p = Program::new();
        p.push(Instruction::Rd { bank: 0, column: 0 });
        assert!(matches!(e.run(&p), Err(SoftMcError::BadProgram { .. })));
        let mut p2 = Program::new();
        p2.push(Instruction::Pre { bank: 0 });
        assert!(matches!(e.run(&p2), Err(SoftMcError::BadProgram { .. })));
    }

    #[test]
    fn custom_t_rcd_reaches_device() {
        // With a deliberately tiny tRCD the device sees timing-violating
        // reads and corrupts them.
        let mut m = module();
        let cols = m.geometry().columns_per_row;
        let nominal = TimingParams::default();
        let mut e = Engine::new(&mut m, nominal);
        e.run(&Program::init_row(0, 9, cols, 0x0F0F_0F0F_0F0F_0F0F))
            .unwrap();
        drop(e);
        let fast = TimingParams::default().with_t_rcd(3.0);
        let mut e2 = Engine::new(&mut m, fast);
        let data = e2.run(&Program::read_row(0, 9, cols)).unwrap();
        let flips: u32 = data
            .iter()
            .map(|w| (w ^ 0x0F0F_0F0F_0F0F_0F0Fu64).count_ones())
            .sum();
        assert!(flips > 0, "3 ns tRCD must corrupt reads");
    }

    #[test]
    fn wait_advances_clock_exactly() {
        let mut m = module();
        let mut e = Engine::new(&mut m, TimingParams::default());
        e.run(&Program::wait(64e6)).unwrap(); // 64 ms
        assert!((m.now_ns() - 64e6).abs() < 1e-9);
    }

    #[test]
    fn ref_instruction_refreshes() {
        let mut m = module();
        let mut e = Engine::new(&mut m, TimingParams::default());
        let mut p = Program::new();
        p.push(Instruction::Ref);
        e.run(&p).unwrap();
        assert!(m.now_ns() >= 350.0);
    }
}
