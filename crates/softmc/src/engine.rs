//! The command engine: program execution against a device.
//!
//! The engine enforces the configured [`TimingParams`] the way a memory
//! controller does — inserting the ACT→RD (`t_RCD`), ACT→PRE (`t_RAS`), and
//! PRE→ACT (`t_RP`) delays — and issues commands on SoftMC's 1.5 ns slot
//! grid. Programs are lowered to a [`CompiledPlan`] before execution (see
//! [`crate::plan`]): whole-row bursts run through the device's bulk row
//! operations and pure hammer loops (`LOOP n { ACT; PRE; ... }`) through the
//! bulk-hammer operation, in O(1) dispatches instead of O(columns) or O(n).
//! [`Engine::run_interpreted`] keeps the per-instruction path alive as the
//! equivalence oracle: both paths issue every logical command at the same
//! slot, draw the same noise, tally the same [`CommandMix`], and fail at the
//! same instruction, so their observable behaviour is bit-identical.

use crate::error::SoftMcError;
use crate::inst::Instruction;
use crate::plan::{hammer_pairs, CompiledPlan, PlanOp};
use crate::program::{Op, Program};
use hammervolt_dram::timing::{TimingParams, COMMAND_SLOT_NS};
use hammervolt_dram::DramModule;
use hammervolt_obs::counter_add;

/// A program run's DDR4 command mix, tallied locally (plain integer adds on
/// the hot path) and flushed to the process-wide metrics registry once per
/// run. Coalesced hammer loops and row bursts count their *logical*
/// commands — `count × pairs` ACT/PRE, one RD/WR per column — so the mix
/// reports what the device experienced, not how the engine optimized it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommandMix {
    /// ACT commands issued.
    pub act: u64,
    /// PRE commands issued.
    pub pre: u64,
    /// RD commands issued.
    pub rd: u64,
    /// WR commands issued.
    pub wr: u64,
    /// REF commands issued.
    pub refresh: u64,
    /// WAIT pseudo-commands executed.
    pub wait: u64,
}

/// Per-bank controller-side state.
#[derive(Debug, Clone, Copy, Default)]
struct BankTrack {
    /// Time of the last ACT, if the bank is open.
    act_at_ns: Option<f64>,
    /// Time of the last PRE.
    pre_at_ns: f64,
}

/// Reusable engine working memory.
///
/// Constructing an [`Engine`] needs per-bank bookkeeping; a host that runs
/// many short programs (one per Alg. 1–3 measurement step) keeps one
/// `EngineScratch` and builds engines with [`Engine::with_scratch`], so the
/// steady-state loop allocates nothing.
#[derive(Debug, Default)]
pub struct EngineScratch {
    banks: Vec<BankTrack>,
}

impl EngineScratch {
    /// Creates empty scratch; sized lazily by the first engine built on it.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Bank bookkeeping storage: owned by the engine, or borrowed from an
/// [`EngineScratch`] to make engine construction allocation-free.
#[derive(Debug)]
enum BankSlots<'a> {
    Owned(Vec<BankTrack>),
    Borrowed(&'a mut Vec<BankTrack>),
}

impl BankSlots<'_> {
    #[inline]
    fn get(&self, bank: u32) -> BankTrack {
        let v: &[BankTrack] = match self {
            BankSlots::Owned(v) => v,
            BankSlots::Borrowed(v) => v,
        };
        v.get(bank as usize).copied().unwrap_or_default()
    }

    #[inline]
    fn get_mut(&mut self, bank: u32) -> Option<&mut BankTrack> {
        let v: &mut Vec<BankTrack> = match self {
            BankSlots::Owned(v) => v,
            BankSlots::Borrowed(v) => v,
        };
        v.get_mut(bank as usize)
    }
}

/// Per-column write data for a row burst.
enum WriteSource<'a> {
    /// The same word into columns `0..columns`.
    Uniform { columns: u32, word: u64 },
    /// One word per column, column-major from 0.
    Slice(&'a [u64]),
}

impl WriteSource<'_> {
    #[inline]
    fn columns(&self) -> u32 {
        match self {
            WriteSource::Uniform { columns, .. } => *columns,
            WriteSource::Slice(data) => data.len() as u32,
        }
    }

    #[inline]
    fn word(&self, column: u32) -> u64 {
        match self {
            WriteSource::Uniform { word, .. } => *word,
            WriteSource::Slice(data) => data[column as usize],
        }
    }
}

/// Executes programs against a device with timing enforcement.
#[derive(Debug)]
pub struct Engine<'d> {
    module: &'d mut DramModule,
    timing: TimingParams,
    banks: BankSlots<'d>,
    /// Issue time of the previous command (bus occupancy: one command per
    /// 1.5 ns slot).
    last_cmd_ns: f64,
    /// Command tally for the current program run.
    mix: CommandMix,
}

impl<'d> Engine<'d> {
    /// Creates an engine over a device with the given timing parameters.
    pub fn new(module: &'d mut DramModule, timing: TimingParams) -> Self {
        let banks = vec![BankTrack::default(); module.geometry().banks as usize];
        let last_cmd_ns = module.now_ns() - COMMAND_SLOT_NS;
        Engine {
            module,
            timing,
            banks: BankSlots::Owned(banks),
            last_cmd_ns,
            mix: CommandMix::default(),
        }
    }

    /// Creates an engine whose bank bookkeeping lives in reusable scratch:
    /// after the scratch's first use, engine construction performs no heap
    /// allocation.
    pub fn with_scratch(
        module: &'d mut DramModule,
        timing: TimingParams,
        scratch: &'d mut EngineScratch,
    ) -> Self {
        let n = module.geometry().banks as usize;
        scratch.banks.clear();
        scratch.banks.resize(n, BankTrack::default());
        let last_cmd_ns = module.now_ns() - COMMAND_SLOT_NS;
        Engine {
            module,
            timing,
            banks: BankSlots::Borrowed(&mut scratch.banks),
            last_cmd_ns,
            mix: CommandMix::default(),
        }
    }

    /// Runs a program to completion, returning all data read.
    ///
    /// The program is lowered to a [`CompiledPlan`] and executed through the
    /// fast path; the result is bit-identical to [`Engine::run_interpreted`].
    ///
    /// # Errors
    ///
    /// Propagates device errors; the device clock reflects all commands
    /// issued up to the failure point.
    pub fn run(&mut self, program: &Program) -> Result<Vec<u64>, SoftMcError> {
        let plan = CompiledPlan::compile(program);
        let mut out = Vec::new();
        self.run_plan(&plan, &mut out)?;
        Ok(out)
    }

    /// Runs a pre-compiled plan, appending read data to `out` (cleared
    /// first). This is the allocation-free hot path: with an interned plan
    /// and a reused `out` buffer, a whole measurement step touches the heap
    /// only to grow buffers on first use.
    ///
    /// # Errors
    ///
    /// Propagates device errors; the device clock reflects all commands
    /// issued up to the failure point.
    pub fn run_plan(&mut self, plan: &CompiledPlan, out: &mut Vec<u64>) -> Result<(), SoftMcError> {
        out.clear();
        self.mix = CommandMix::default();
        let result = self.run_plan_ops(&plan.ops, out);
        self.flush_mix(&result);
        result
    }

    /// Runs a program through the per-instruction interpreter — the
    /// reference semantics the compiled path must match bit-for-bit. Kept as
    /// the oracle for the compiled-vs-interpreted equivalence suite.
    ///
    /// # Errors
    ///
    /// Propagates device errors; the device clock reflects all commands
    /// issued up to the failure point.
    pub fn run_interpreted(&mut self, program: &Program) -> Result<Vec<u64>, SoftMcError> {
        let mut out = Vec::new();
        self.mix = CommandMix::default();
        let result = self.run_ops(&program.ops, &mut out);
        self.flush_mix(&result);
        result?;
        Ok(out)
    }

    /// The command tally of the most recent run (complete or failed).
    pub fn command_mix(&self) -> CommandMix {
        self.mix
    }

    /// Flushes the run's command tally to the metrics registry. Pure side
    /// channel: a handful of relaxed atomic adds when metrics are on, one
    /// atomic load when off.
    fn flush_mix(&self, result: &Result<(), SoftMcError>) {
        if !hammervolt_obs::metrics_enabled() {
            return;
        }
        counter_add!("softmc_programs", 1);
        counter_add!("softmc_act", self.mix.act);
        counter_add!("softmc_pre", self.mix.pre);
        counter_add!("softmc_rd", self.mix.rd);
        counter_add!("softmc_wr", self.mix.wr);
        counter_add!("softmc_ref", self.mix.refresh);
        counter_add!("softmc_wait", self.mix.wait);
        match result {
            Ok(()) => {}
            Err(SoftMcError::BadProgram { .. }) => counter_add!("softmc_bad_programs", 1),
            Err(_) => counter_add!("softmc_device_errors", 1),
        }
    }

    // ------------------------------------------------------------------
    // Compiled path
    // ------------------------------------------------------------------

    fn run_plan_ops(&mut self, ops: &[PlanOp], out: &mut Vec<u64>) -> Result<(), SoftMcError> {
        for op in ops {
            match op {
                PlanOp::InitRow {
                    bank,
                    row,
                    columns,
                    word,
                } => self.exec_write_burst(
                    *bank,
                    *row,
                    WriteSource::Uniform {
                        columns: *columns,
                        word: *word,
                    },
                    out,
                )?,
                PlanOp::WriteRun { bank, row, data } => {
                    self.exec_write_burst(*bank, *row, WriteSource::Slice(data), out)?
                }
                PlanOp::ReadRow { bank, row, columns } => {
                    self.exec_read_row(*bank, *row, *columns, out)?
                }
                PlanOp::Hammer { count, pairs } => self.run_hammer_loop(*count, pairs)?,
                PlanOp::Inst(inst) => self.issue(*inst, out)?,
                PlanOp::Loop { count, body } => {
                    for _ in 0..*count {
                        self.run_plan_ops(body, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Issues the ACT opening a row burst: tallied and slotted exactly like
    /// the interpreted ACT. Returns the ACT issue time.
    fn burst_act(&mut self, bank: u32, row: u32) -> Result<f64, SoftMcError> {
        self.mix.act += 1;
        let track = self.banks.get(bank);
        let t_act = self.issue_slot(track.pre_at_ns + self.timing.t_rp_ns);
        self.module.activate(bank, row)?;
        if let Some(track) = self.banks.get_mut(bank) {
            track.act_at_ns = Some(t_act);
        }
        Ok(t_act)
    }

    /// Issues the PRE closing a row burst at `t_RAS` after `t_act`.
    fn burst_pre(&mut self, bank: u32, t_act: f64) -> Result<(), SoftMcError> {
        self.mix.pre += 1;
        let t = self.issue_slot(t_act + self.timing.t_ras_ns);
        self.module.precharge(bank, t - t_act)?;
        if let Some(track) = self.banks.get_mut(bank) {
            track.act_at_ns = None;
            track.pre_at_ns = t;
        }
        Ok(())
    }

    /// Replays the controller's per-column issue recurrence without touching
    /// the device: the clock after `columns` successive column commands
    /// constrained by `rcd_target`, starting with both the clock and the
    /// last-command slot at `start`. Performs the same float operations in
    /// the same order as `columns` calls of [`Engine::issue_slot`], so the
    /// result is bit-identical to issuing the commands one at a time.
    fn burst_end_slot(start: f64, rcd_target: f64, columns: u32) -> f64 {
        let mut clock = start;
        let mut last = start;
        for _ in 0..columns {
            let target = (last + COMMAND_SLOT_NS).max(rcd_target);
            if target > clock {
                clock += target - clock;
            }
            last = clock;
        }
        clock
    }

    /// Executes `ACT; WR×columns; PRE` as one macro-op. Shapes the bulk
    /// device path cannot express (zero columns, more columns than the
    /// geometry has) fall back to synthesized per-instruction issue, which
    /// reproduces interpreted semantics — including the failure point —
    /// exactly.
    fn exec_write_burst(
        &mut self,
        bank: u32,
        row: u32,
        source: WriteSource<'_>,
        out: &mut Vec<u64>,
    ) -> Result<(), SoftMcError> {
        let columns = source.columns();
        if columns == 0 || columns > self.module.geometry().columns_per_row {
            self.issue(Instruction::Act { bank, row }, out)?;
            for column in 0..columns {
                self.issue(
                    Instruction::Wr {
                        bank,
                        column,
                        data: source.word(column),
                    },
                    out,
                )?;
            }
            return self.issue(Instruction::Pre { bank }, out);
        }
        let t_act = self.burst_act(bank, row)?;
        self.mix.wr += columns as u64;
        // All writes land in one bulk fill; only the final write's clock is
        // observable (it stamps the row's restore time), so the clock jumps
        // straight to the last WR slot.
        let t_last = Self::burst_end_slot(t_act, t_act + self.timing.t_rcd_ns, columns);
        self.module.advance_to_ns(t_last);
        self.last_cmd_ns = t_last;
        match source {
            WriteSource::Uniform { word, .. } => self
                .module
                .fill_open_row(bank, columns, word)
                .map_err(SoftMcError::from)?,
            WriteSource::Slice(data) => self
                .module
                .write_open_row(bank, data)
                .map_err(SoftMcError::from)?,
        }
        self.burst_pre(bank, t_act)
    }

    /// Executes `ACT; RD×columns; PRE` as one macro-op, appending the read
    /// words to `out`. The device's bulk read replays the same per-column
    /// slot recurrence the interpreter would, so every column sees the
    /// identical effective `t_RCD`.
    fn exec_read_row(
        &mut self,
        bank: u32,
        row: u32,
        columns: u32,
        out: &mut Vec<u64>,
    ) -> Result<(), SoftMcError> {
        if columns == 0 || columns > self.module.geometry().columns_per_row {
            self.issue(Instruction::Act { bank, row }, out)?;
            for column in 0..columns {
                self.issue(Instruction::Rd { bank, column }, out)?;
            }
            return self.issue(Instruction::Pre { bank }, out);
        }
        let t_act = self.burst_act(bank, row)?;
        self.mix.rd += columns as u64;
        self.module
            .read_open_row_into(bank, self.timing.t_rcd_ns, columns, out)
            .map_err(SoftMcError::from)?;
        self.last_cmd_ns = self.module.now_ns();
        self.burst_pre(bank, t_act)
    }

    // ------------------------------------------------------------------
    // Interpreted path (the equivalence oracle)
    // ------------------------------------------------------------------

    fn run_ops(&mut self, ops: &[Op], out: &mut Vec<u64>) -> Result<(), SoftMcError> {
        for op in ops {
            match op {
                Op::Inst(inst) => self.issue(*inst, out)?,
                Op::Loop { count, body } => {
                    if let Some(pairs) = hammer_pairs(body) {
                        self.run_hammer_loop(*count, &pairs)?;
                    } else {
                        for _ in 0..*count {
                            self.run_ops(body, out)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn run_hammer_loop(&mut self, count: u64, pairs: &[(u32, u32)]) -> Result<(), SoftMcError> {
        let period = self.timing.act_pre_period_ns();
        let logical = count.saturating_mul(pairs.len() as u64);
        self.mix.act = self.mix.act.saturating_add(logical);
        self.mix.pre = self.mix.pre.saturating_add(logical);
        for &(bank, row) in pairs {
            // Close timing bookkeeping for the bank: hammering leaves it
            // precharged.
            self.module.hammer(bank, row, count, period)?;
            if let Some(track) = self.banks.get_mut(bank) {
                track.act_at_ns = None;
                track.pre_at_ns = self.module.now_ns();
            }
        }
        self.last_cmd_ns = self.module.now_ns();
        Ok(())
    }

    /// Advances the device clock to the issue slot of the next command: the
    /// later of the timing `constraint` and one command slot after the
    /// previous command. Command slots overlap timing waits, exactly as on a
    /// real controller — a PRE issues *at* `t_RAS`, not a slot after it.
    fn issue_slot(&mut self, constraint: f64) -> f64 {
        let t = (self.last_cmd_ns + COMMAND_SLOT_NS).max(constraint);
        let now = self.module.now_ns();
        if t > now {
            self.module.advance_ns(t - now);
        }
        self.last_cmd_ns = self.module.now_ns();
        self.last_cmd_ns
    }

    /// Issues one instruction with timing enforcement.
    fn issue(&mut self, inst: Instruction, out: &mut Vec<u64>) -> Result<(), SoftMcError> {
        match inst {
            Instruction::Act { .. } => self.mix.act += 1,
            Instruction::Pre { .. } => self.mix.pre += 1,
            Instruction::Rd { .. } => self.mix.rd += 1,
            Instruction::Wr { .. } => self.mix.wr += 1,
            Instruction::Ref => self.mix.refresh += 1,
            Instruction::Wait { .. } => self.mix.wait += 1,
        }
        match inst {
            Instruction::Act { bank, row } => {
                let track = self.banks.get(bank);
                // tRP: wait after the last precharge.
                let t = self.issue_slot(track.pre_at_ns + self.timing.t_rp_ns);
                self.module.activate(bank, row)?;
                if let Some(track) = self.banks.get_mut(bank) {
                    track.act_at_ns = Some(t);
                }
            }
            Instruction::Pre { bank } => {
                let track = self.banks.get(bank);
                let act_at = track.act_at_ns.ok_or_else(|| SoftMcError::BadProgram {
                    reason: format!("PRE on bank {bank} with no open row"),
                })?;
                // tRAS: the row must stay open long enough.
                let t = self.issue_slot(act_at + self.timing.t_ras_ns);
                self.module.precharge(bank, t - act_at)?;
                if let Some(track) = self.banks.get_mut(bank) {
                    track.act_at_ns = None;
                    track.pre_at_ns = t;
                }
            }
            Instruction::Rd { bank, column } => {
                let track = self.banks.get(bank);
                let act_at = track.act_at_ns.ok_or_else(|| SoftMcError::BadProgram {
                    reason: format!("RD on bank {bank} with no open row"),
                })?;
                // tRCD: this is the delay Alg. 2 sweeps.
                let t = self.issue_slot(act_at + self.timing.t_rcd_ns);
                let word = self.module.read(bank, column, t - act_at)?;
                out.push(word);
            }
            Instruction::Wr { bank, column, data } => {
                let track = self.banks.get(bank);
                let act_at = track.act_at_ns.ok_or_else(|| SoftMcError::BadProgram {
                    reason: format!("WR on bank {bank} with no open row"),
                })?;
                self.issue_slot(act_at + self.timing.t_rcd_ns);
                self.module.write(bank, column, data)?;
            }
            Instruction::Ref => {
                self.issue_slot(0.0);
                self.module.refresh();
                // tRFC for an 8 Gb DDR4 die is 350 ns.
                self.module.advance_ns(350.0);
                self.last_cmd_ns = self.module.now_ns();
            }
            Instruction::Wait { ns } => {
                self.module.advance_ns(ns);
                self.last_cmd_ns = self.module.now_ns();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammervolt_dram::geometry::Geometry;
    use hammervolt_dram::module::DramModule;
    use hammervolt_dram::registry::{self, ModuleId};

    fn module() -> DramModule {
        DramModule::with_geometry(registry::spec(ModuleId::B0), 3, Geometry::small_test()).unwrap()
    }

    #[test]
    fn init_and_read_round_trip() {
        let mut m = module();
        let cols = m.geometry().columns_per_row;
        let timing = TimingParams::default();
        let mut e = Engine::new(&mut m, timing);
        e.run(&Program::init_row(0, 5, cols, 0xAAAA_AAAA_AAAA_AAAA))
            .unwrap();
        let data = e.run(&Program::read_row(0, 5, cols)).unwrap();
        assert_eq!(data.len(), cols as usize);
        assert!(data.iter().all(|&w| w == 0xAAAA_AAAA_AAAA_AAAA));
    }

    #[test]
    fn timing_is_enforced() {
        let mut m = module();
        let timing = TimingParams::default();
        let mut e = Engine::new(&mut m, timing);
        let mut p = Program::new();
        p.push(Instruction::Act { bank: 0, row: 1 });
        p.push(Instruction::Rd { bank: 0, column: 0 });
        p.push(Instruction::Pre { bank: 0 });
        e.run(&p).unwrap();
        // The PRE issues exactly tRAS after the ACT.
        let elapsed = m.now_ns();
        assert!(elapsed >= timing.t_ras_ns, "elapsed = {elapsed}");
    }

    #[test]
    fn coalesced_hammer_advances_clock_like_unrolled() {
        let timing = TimingParams::default();
        // Coalesced: a loop of ACT/PRE pairs.
        let mut m1 = module();
        let t0 = {
            let mut e = Engine::new(&mut m1, timing);
            e.run(&Program::hammer_double_sided(0, 10, 12, 1_000))
                .unwrap();
            m1.now_ns()
        };
        // The coalesced clock must be the loop count times the period for
        // both aggressors.
        let expected = 2.0 * 1_000.0 * timing.act_pre_period_ns();
        assert!(
            (t0 - expected).abs() < 1e-6,
            "clock {t0} vs expected {expected}"
        );
    }

    #[test]
    fn coalesced_hammer_matches_unrolled_flips() {
        let timing = TimingParams::default();
        let cols = Geometry::small_test().columns_per_row;
        let run = |coalesce: bool| -> Vec<u64> {
            let mut m = module();
            let victim = 100;
            let (below, above) = m.mapping().physical_neighbors(victim);
            let (below, above) = (below.unwrap(), above.unwrap());
            let mut e = Engine::new(&mut m, timing);
            e.run(&Program::init_row(0, victim, cols, 0xAAAA_AAAA_AAAA_AAAA))
                .unwrap();
            e.run(&Program::init_row(0, below, cols, 0x5555_5555_5555_5555))
                .unwrap();
            e.run(&Program::init_row(0, above, cols, 0x5555_5555_5555_5555))
                .unwrap();
            if coalesce {
                e.run(&Program::hammer_double_sided(0, below, above, 60_000))
                    .unwrap();
            } else {
                // The same commands, but in a shape the coalescer rejects
                // (odd trailing op), forcing genuine per-iteration execution.
                let mut p = Program::new();
                p.push_loop(
                    60_000,
                    vec![
                        Op::Inst(Instruction::Act {
                            bank: 0,
                            row: below,
                        }),
                        Op::Inst(Instruction::Pre { bank: 0 }),
                        Op::Inst(Instruction::Act {
                            bank: 0,
                            row: above,
                        }),
                        Op::Inst(Instruction::Pre { bank: 0 }),
                        Op::Inst(Instruction::Wait { ns: 0.0 }),
                    ],
                );
                e.run(&p).unwrap();
            }
            e.run(&Program::read_row(0, victim, cols)).unwrap()
        };
        // Flip *counts* must agree between coalesced and unrolled paths up
        // to the device's cycle-to-cycle noise (the coalesced path draws one
        // noise sample per bulk call; the unrolled path draws one per ACT).
        let expected = 0xAAAA_AAAA_AAAA_AAAAu64;
        let count =
            |v: &[u64]| -> f64 { v.iter().map(|w| (w ^ expected).count_ones() as f64).sum() };
        let a = count(&run(true));
        let b = count(&run(false));
        assert!(a > 0.0, "coalesced path must flip");
        assert!(b > 0.0, "unrolled path must flip");
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 1.6, "coalesced {a} vs unrolled {b} flips");
    }

    #[test]
    fn reads_before_activate_are_rejected() {
        let mut m = module();
        let mut e = Engine::new(&mut m, TimingParams::default());
        let mut p = Program::new();
        p.push(Instruction::Rd { bank: 0, column: 0 });
        assert!(matches!(e.run(&p), Err(SoftMcError::BadProgram { .. })));
        let mut p2 = Program::new();
        p2.push(Instruction::Pre { bank: 0 });
        assert!(matches!(e.run(&p2), Err(SoftMcError::BadProgram { .. })));
    }

    #[test]
    fn custom_t_rcd_reaches_device() {
        // With a deliberately tiny tRCD the device sees timing-violating
        // reads and corrupts them.
        let mut m = module();
        let cols = m.geometry().columns_per_row;
        let nominal = TimingParams::default();
        let mut e = Engine::new(&mut m, nominal);
        e.run(&Program::init_row(0, 9, cols, 0x0F0F_0F0F_0F0F_0F0F))
            .unwrap();
        drop(e);
        let fast = TimingParams::default().with_t_rcd(3.0);
        let mut e2 = Engine::new(&mut m, fast);
        let data = e2.run(&Program::read_row(0, 9, cols)).unwrap();
        let flips: u32 = data
            .iter()
            .map(|w| (w ^ 0x0F0F_0F0F_0F0F_0F0Fu64).count_ones())
            .sum();
        assert!(flips > 0, "3 ns tRCD must corrupt reads");
    }

    #[test]
    fn wait_advances_clock_exactly() {
        let mut m = module();
        let mut e = Engine::new(&mut m, TimingParams::default());
        e.run(&Program::wait(64e6)).unwrap(); // 64 ms
        assert!((m.now_ns() - 64e6).abs() < 1e-9);
    }

    #[test]
    fn ref_instruction_refreshes() {
        let mut m = module();
        let mut e = Engine::new(&mut m, TimingParams::default());
        let mut p = Program::new();
        p.push(Instruction::Ref);
        e.run(&p).unwrap();
        assert!(m.now_ns() >= 350.0);
    }

    #[test]
    fn compiled_matches_interpreted_for_init_hammer_read() {
        // The bit-exact sweep lives in the testkit equivalence suite; this
        // pins the core invariant next to the engine itself.
        let cols = Geometry::small_test().columns_per_row;
        let timing = TimingParams::default();
        let session = |interpret: bool| -> (Vec<u64>, f64, CommandMix) {
            let mut m = module();
            let mut e = Engine::new(&mut m, timing);
            let programs = [
                Program::init_row(0, 100, cols, 0xAAAA_AAAA_AAAA_AAAA),
                Program::init_row(0, 99, cols, 0x5555_5555_5555_5555),
                Program::init_row(0, 101, cols, 0x5555_5555_5555_5555),
                Program::hammer_double_sided(0, 99, 101, 60_000),
                Program::read_row(0, 100, cols),
            ];
            let mut last = Vec::new();
            let mut mix = CommandMix::default();
            for p in &programs {
                last = if interpret {
                    e.run_interpreted(p).unwrap()
                } else {
                    e.run(p).unwrap()
                };
                let m = e.command_mix();
                mix.act += m.act;
                mix.pre += m.pre;
                mix.rd += m.rd;
                mix.wr += m.wr;
            }
            drop(e);
            (last, m.now_ns(), mix)
        };
        let (ri, ci, mi) = session(true);
        let (rc, cc, mc) = session(false);
        assert_eq!(ri, rc, "read words must be bit-identical");
        assert_eq!(
            ci.to_bits(),
            cc.to_bits(),
            "final clock must be bit-identical"
        );
        assert_eq!(mi, mc, "command mixes must agree");
    }

    #[test]
    fn command_mix_counts_logical_commands() {
        let mut m = module();
        let cols = m.geometry().columns_per_row as u64;
        let mut e = Engine::new(&mut m, TimingParams::default());
        e.run(&Program::init_row(0, 5, cols as u32, 0)).unwrap();
        assert_eq!(
            e.command_mix(),
            CommandMix {
                act: 1,
                pre: 1,
                wr: cols,
                ..CommandMix::default()
            }
        );
        e.run(&Program::hammer_double_sided(0, 4, 6, 1_000))
            .unwrap();
        assert_eq!(
            e.command_mix(),
            CommandMix {
                act: 2_000,
                pre: 2_000,
                ..CommandMix::default()
            }
        );
    }

    #[test]
    fn scratch_engine_matches_owned_engine() {
        let cols = Geometry::small_test().columns_per_row;
        let run = |scratch: bool| -> (Vec<u64>, f64) {
            let mut m = module();
            let mut s = EngineScratch::new();
            let mut e = if scratch {
                Engine::with_scratch(&mut m, TimingParams::default(), &mut s)
            } else {
                Engine::new(&mut m, TimingParams::default())
            };
            e.run(&Program::init_row(0, 7, cols, 0xFF00_FF00_FF00_FF00))
                .unwrap();
            let data = e.run(&Program::read_row(0, 7, cols)).unwrap();
            drop(e);
            (data, m.now_ns())
        };
        let (a, ca) = run(false);
        let (b, cb) = run(true);
        assert_eq!(a, b);
        assert_eq!(ca.to_bits(), cb.to_bits());
    }
}
