//! Heater-pad thermal plant and PID temperature controller.
//!
//! §4.1: "We attach heater pads to the DRAM chips ... We use a MaxWell FT200
//! PID temperature controller connected to the heater pads to maintain the
//! DRAM chips under test at a preset temperature level with the precision of
//! ±0.1 °C." The study runs RowHammer and `t_RCD` tests at 50 °C and
//! retention tests at 80 °C.

use serde::{Deserialize, Serialize};

/// First-order thermal plant: DIMM + heater pads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalPlant {
    /// Ambient temperature (°C).
    pub ambient_c: f64,
    /// Thermal resistance to ambient (°C/W).
    pub resistance: f64,
    /// Heat capacity (J/°C).
    pub capacity: f64,
    /// Maximum heater power (W).
    pub max_power_w: f64,
    /// Current temperature (°C).
    temperature_c: f64,
}

impl Default for ThermalPlant {
    fn default() -> Self {
        ThermalPlant {
            ambient_c: 25.0,
            resistance: 2.0,
            capacity: 40.0,
            max_power_w: 60.0,
            temperature_c: 25.0,
        }
    }
}

impl ThermalPlant {
    /// Current plant temperature.
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Advances the plant by `dt` seconds with the given heater power.
    pub fn step(&mut self, power_w: f64, dt_s: f64) {
        let power = power_w.clamp(0.0, self.max_power_w);
        let d_t = (power - (self.temperature_c - self.ambient_c) / self.resistance) / self.capacity;
        self.temperature_c += d_t * dt_s;
    }
}

/// PID controller in the style of the MaxWell FT200.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidController {
    /// Proportional gain (W/°C).
    pub kp: f64,
    /// Integral gain (W/(°C·s)).
    pub ki: f64,
    /// Derivative gain (W·s/°C).
    pub kd: f64,
    integral: f64,
    last_error: f64,
}

impl Default for PidController {
    fn default() -> Self {
        PidController {
            kp: 25.0,
            ki: 2.0,
            kd: 8.0,
            integral: 0.0,
            last_error: 0.0,
        }
    }
}

impl PidController {
    /// One control step: returns heater power for the given error.
    pub fn step(&mut self, error: f64, dt_s: f64) -> f64 {
        self.integral = (self.integral + error * dt_s).clamp(-50.0, 50.0);
        let derivative = if dt_s > 0.0 {
            (error - self.last_error) / dt_s
        } else {
            0.0
        };
        self.last_error = error;
        self.kp * error + self.ki * self.integral + self.kd * derivative
    }

    /// Resets the controller state.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = 0.0;
    }
}

/// Outcome of a closed-loop settling run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SettleReport {
    /// Target temperature (°C).
    pub target_c: f64,
    /// Simulated time until the temperature first entered and stayed inside
    /// the ±0.1 °C band (s); `f64::INFINITY` if it never settled.
    pub settle_time_s: f64,
    /// Final temperature (°C).
    pub final_c: f64,
    /// Maximum overshoot above the target (°C).
    pub overshoot_c: f64,
}

impl SettleReport {
    /// Whether the controller holds the FT200's ±0.1 °C precision.
    pub fn within_precision(&self) -> bool {
        (self.final_c - self.target_c).abs() <= 0.1
    }
}

/// Closed-loop temperature controller: PID + plant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemperatureController {
    /// The thermal plant under control.
    pub plant: ThermalPlant,
    /// The PID loop.
    pub pid: PidController,
    /// Control period (s).
    pub dt_s: f64,
}

impl Default for TemperatureController {
    fn default() -> Self {
        TemperatureController {
            plant: ThermalPlant::default(),
            pid: PidController::default(),
            dt_s: 0.1,
        }
    }
}

impl TemperatureController {
    /// Runs the loop until the plant settles at `target_c` (or the time
    /// budget runs out) and reports the outcome.
    pub fn settle_to(&mut self, target_c: f64) -> SettleReport {
        self.pid.reset();
        let budget_s = 1800.0;
        let mut t = 0.0;
        let mut overshoot: f64 = 0.0;
        let mut inside_since: Option<f64> = None;
        let mut settle_time = f64::INFINITY;
        while t < budget_s {
            let error = target_c - self.plant.temperature_c();
            let power = self.pid.step(error, self.dt_s);
            self.plant.step(power, self.dt_s);
            t += self.dt_s;
            overshoot = overshoot.max(self.plant.temperature_c() - target_c);
            if (self.plant.temperature_c() - target_c).abs() <= 0.1 {
                let since = *inside_since.get_or_insert(t);
                // stable for 60 s inside the band counts as settled
                if t - since >= 60.0 && !settle_time.is_finite() {
                    settle_time = since;
                }
            } else {
                inside_since = None;
            }
        }
        SettleReport {
            target_c,
            settle_time_s: settle_time,
            final_c: self.plant.temperature_c(),
            overshoot_c: overshoot,
        }
    }

    /// Current temperature.
    pub fn temperature_c(&self) -> f64 {
        self.plant.temperature_c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plant_heats_and_cools() {
        let mut p = ThermalPlant::default();
        for _ in 0..1000 {
            p.step(30.0, 1.0);
        }
        // steady state: ambient + P·R = 25 + 60 = 85
        assert!((p.temperature_c() - 85.0).abs() < 1.0);
        for _ in 0..5000 {
            p.step(0.0, 1.0);
        }
        assert!((p.temperature_c() - 25.0).abs() < 0.5);
    }

    #[test]
    fn plant_clamps_heater_power() {
        let mut p = ThermalPlant::default();
        for _ in 0..10_000 {
            p.step(10_000.0, 1.0);
        }
        // bounded by max_power: 25 + 60·2 = 145
        assert!(p.temperature_c() <= 145.1);
    }

    #[test]
    fn settles_at_50c_within_precision() {
        let mut c = TemperatureController::default();
        let report = c.settle_to(50.0);
        assert!(report.within_precision(), "final = {} °C", report.final_c);
        assert!(report.settle_time_s.is_finite(), "never settled");
    }

    #[test]
    fn settles_at_80c_within_precision() {
        let mut c = TemperatureController::default();
        let report = c.settle_to(80.0);
        assert!(report.within_precision(), "final = {} °C", report.final_c);
        assert!(report.overshoot_c < 5.0, "overshoot {}", report.overshoot_c);
    }

    #[test]
    fn retargeting_works_downward() {
        let mut c = TemperatureController::default();
        c.settle_to(80.0);
        let report = c.settle_to(50.0);
        assert!(report.within_precision(), "final = {} °C", report.final_c);
    }

    #[test]
    fn pid_reset_clears_state() {
        let mut pid = PidController::default();
        pid.step(5.0, 0.1);
        pid.step(5.0, 0.1);
        pid.reset();
        assert_eq!(pid.integral, 0.0);
        assert_eq!(pid.last_error, 0.0);
    }
}
