//! SoftMC-style DRAM test infrastructure model.
//!
//! The paper's experiments run on "an infrastructure based on SoftMC, the
//! state-of-the-art FPGA-based open-source infrastructure for DRAM
//! characterization", extensively modified for DDR4 (§4.1): a Xilinx Alveo
//! U200 issuing raw DDR4 command streams, an Adexelec interposer whose `V_PP`
//! shunt resistor is removed so an external TTi PL068-P supply drives the
//! wordline rail at ±1 mV precision, and heater pads under a MaxWell FT200
//! PID controller holding the chips at ±0.1 °C.
//!
//! This crate rebuilds each piece:
//!
//! - [`inst`] / [`program`] — the DDR4 instruction set and loop-structured
//!   test programs (real SoftMC programs are exactly this shape),
//! - [`plan`] — compiled program plans: programs lowered once into
//!   loop-coalesced macro-ops (whole-row bursts, bulk hammers) that the
//!   engine executes with closed-form slot timing,
//! - [`engine`] — the command engine: executes compiled plans against a
//!   [`hammervolt_dram::DramModule`] with timing enforcement at the 1.5 ns
//!   command-slot granularity, bit-identical to per-instruction
//!   interpretation (kept as [`engine::Engine::run_interpreted`], the
//!   equivalence oracle),
//! - [`power`] — the external supply and the interposer shunt,
//! - [`thermal`] — the PID temperature controller and heater-pad plant,
//! - [`host`] — [`SoftMc`], the top-level session tying it all together.
//!
//! # Example
//!
//! ```
//! use hammervolt_dram::registry::{self, ModuleId};
//! use hammervolt_softmc::SoftMc;
//!
//! let module = registry::instantiate(ModuleId::A0, 1).unwrap();
//! let mut mc = SoftMc::new(module);
//! mc.set_vpp(2.4).unwrap();
//! assert_eq!(mc.vpp(), 2.4);
//! let vppmin = mc.find_vppmin().unwrap();
//! assert!((vppmin - 1.4).abs() < 1e-9); // A0's Table 3 V_PPmin
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod host;
pub mod inst;
pub mod plan;
pub mod power;
pub mod program;
pub mod thermal;

pub use engine::{CommandMix, Engine, EngineScratch};
pub use error::SoftMcError;
pub use host::SoftMc;
pub use inst::Instruction;
pub use plan::{CompiledPlan, PlanOp};
pub use program::Program;
