//! External `V_PP` supply and interposer model.
//!
//! §4.1: "The interposer board enforces the power to be supplied through a
//! shunt resistor on the V_PP rail. We remove this shunt resistor to
//! electrically disconnect the V_PP rails of the DRAM module and the FPGA
//! board. Then, we supply power to the DRAM module's V_PP power rail from an
//! external TTi PL068-P power supply, which enables us to control V_PP at
//! the precision of ±1 mV."

use crate::error::SoftMcError;
use serde::{Deserialize, Serialize};

/// The TTi PL068-P bench supply: 0–6 V, 8 A, 1 mV setpoint resolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSupply {
    /// Current output setpoint (V), quantized to 1 mV.
    setpoint_v: f64,
    /// Output enabled?
    output_on: bool,
    /// Maximum output voltage (V).
    max_v: f64,
}

impl Default for PowerSupply {
    fn default() -> Self {
        PowerSupply::new()
    }
}

impl PowerSupply {
    /// A PL068-P at its power-on state: output off, 0 V.
    pub fn new() -> Self {
        PowerSupply {
            setpoint_v: 0.0,
            output_on: false,
            max_v: 6.0,
        }
    }

    /// Programs the output voltage, quantized to the supply's 1 mV
    /// resolution.
    ///
    /// # Errors
    ///
    /// Fails if the request exceeds the supply's range.
    pub fn set_volts(&mut self, volts: f64) -> Result<(), SoftMcError> {
        if !(0.0..=self.max_v).contains(&volts) || !volts.is_finite() {
            return Err(SoftMcError::SupplyRange {
                requested: volts,
                max: self.max_v,
            });
        }
        self.setpoint_v = (volts * 1000.0).round() / 1000.0;
        Ok(())
    }

    /// Enables the output.
    pub fn output_on(&mut self) {
        self.output_on = true;
    }

    /// Disables the output.
    pub fn output_off(&mut self) {
        self.output_on = false;
    }

    /// The voltage currently present at the terminals: the setpoint when the
    /// output is enabled, 0 V otherwise.
    pub fn terminal_volts(&self) -> f64 {
        if self.output_on {
            self.setpoint_v
        } else {
            0.0
        }
    }

    /// The programmed setpoint.
    pub fn setpoint(&self) -> f64 {
        self.setpoint_v
    }
}

/// The Adexelec interposer's `V_PP` path: by default the rail is fed from
/// the FPGA board through a shunt resistor; removing the shunt disconnects
/// it so the external supply can take over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interposer {
    shunt_installed: bool,
}

impl Default for Interposer {
    fn default() -> Self {
        Interposer::new()
    }
}

impl Interposer {
    /// A factory-fresh interposer with the shunt installed.
    pub fn new() -> Self {
        Interposer {
            shunt_installed: true,
        }
    }

    /// Whether the shunt is still in place.
    pub fn shunt_installed(&self) -> bool {
        self.shunt_installed
    }

    /// Removes the shunt (a one-way, physical modification).
    pub fn remove_shunt(&mut self) {
        self.shunt_installed = false;
    }

    /// The `V_PP` the module sees given the FPGA rail and the external
    /// supply.
    ///
    /// # Errors
    ///
    /// With the shunt installed, attaching an external supply would fight
    /// the FPGA rail: reported as [`SoftMcError::ShuntInstalled`] when the
    /// supply output is on.
    pub fn rail_volts(&self, fpga_rail_v: f64, external: &PowerSupply) -> Result<f64, SoftMcError> {
        if self.shunt_installed {
            if external.terminal_volts() > 0.0 {
                return Err(SoftMcError::ShuntInstalled);
            }
            Ok(fpga_rail_v)
        } else {
            Ok(external.terminal_volts())
        }
    }
}

/// Wordline-pump current estimation — the measurement the Adexelec
/// interposer's shunt path provides (§4.1: "a commercial interposer board
/// ... with current measurement capability").
///
/// Each ACT pumps the wordline capacitance to `V_PP` and back; the supply
/// current is the activation rate times that charge plus a static pump
/// leakage term.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurrentMeter {
    /// Effective wordline capacitance charged per activation (F).
    pub c_wordline: f64,
    /// Static V_PP rail draw (A).
    pub standby_a: f64,
    last_activations: u64,
    last_ns: f64,
}

impl Default for CurrentMeter {
    fn default() -> Self {
        CurrentMeter {
            // ~150 pF of wordline + driver capacitance across the rank
            c_wordline: 150e-12,
            standby_a: 4e-3,
            last_activations: 0,
            last_ns: 0.0,
        }
    }
}

impl CurrentMeter {
    /// Samples the meter: given the device's cumulative activation count and
    /// clock, returns the average `I_PP` over the interval since the last
    /// sample. The first sample (or a zero-length interval) reports the
    /// standby current.
    pub fn sample(&mut self, activations: u64, now_ns: f64, vpp: f64) -> f64 {
        let d_act = activations.saturating_sub(self.last_activations) as f64;
        let d_t = (now_ns - self.last_ns) * 1e-9;
        self.last_activations = activations;
        self.last_ns = now_ns;
        if d_t <= 0.0 {
            return self.standby_a;
        }
        let charge_per_act = self.c_wordline * vpp;
        self.standby_a + d_act * charge_per_act / d_t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setpoint_quantizes_to_millivolts() {
        let mut s = PowerSupply::new();
        s.set_volts(2.4996).unwrap();
        assert_eq!(s.setpoint(), 2.5);
        s.set_volts(1.7004).unwrap();
        assert_eq!(s.setpoint(), 1.7);
    }

    #[test]
    fn range_is_enforced() {
        let mut s = PowerSupply::new();
        assert!(s.set_volts(6.0).is_ok());
        assert!(matches!(
            s.set_volts(6.5),
            Err(SoftMcError::SupplyRange { .. })
        ));
        assert!(s.set_volts(-0.1).is_err());
        assert!(s.set_volts(f64::NAN).is_err());
    }

    #[test]
    fn output_gating() {
        let mut s = PowerSupply::new();
        s.set_volts(2.5).unwrap();
        assert_eq!(s.terminal_volts(), 0.0);
        s.output_on();
        assert_eq!(s.terminal_volts(), 2.5);
        s.output_off();
        assert_eq!(s.terminal_volts(), 0.0);
    }

    #[test]
    fn shunt_blocks_external_supply() {
        let interposer = Interposer::new();
        let mut supply = PowerSupply::new();
        supply.set_volts(2.5).unwrap();
        supply.output_on();
        assert!(matches!(
            interposer.rail_volts(2.5, &supply),
            Err(SoftMcError::ShuntInstalled)
        ));
    }

    #[test]
    fn shunt_passes_fpga_rail_when_supply_off() {
        let interposer = Interposer::new();
        let supply = PowerSupply::new();
        assert_eq!(interposer.rail_volts(2.5, &supply).unwrap(), 2.5);
    }

    #[test]
    fn current_meter_tracks_activation_rate() {
        let mut m = CurrentMeter::default();
        // first sample: standby only
        assert_eq!(m.sample(0, 0.0, 2.5), m.standby_a);
        // 1M activations over 48.5 ms (the hammer period): I = standby + rate·Q
        let i = m.sample(1_000_000, 48.5e6, 2.5);
        let expected = 4e-3 + 1_000_000.0 * 150e-12 * 2.5 / 48.5e-3;
        assert!((i - expected).abs() < 1e-6, "i = {i}, expected {expected}");
        // idle interval back to standby
        let idle = m.sample(1_000_000, 60e6, 2.5);
        assert_eq!(idle, m.standby_a);
    }

    #[test]
    fn lower_vpp_draws_less_pump_current() {
        let mut hi = CurrentMeter::default();
        let mut lo = CurrentMeter::default();
        hi.sample(0, 0.0, 2.5);
        lo.sample(0, 0.0, 1.6);
        let i_hi = hi.sample(500_000, 24e6, 2.5);
        let i_lo = lo.sample(500_000, 24e6, 1.6);
        assert!(i_lo < i_hi);
    }

    #[test]
    fn removed_shunt_hands_control_to_supply() {
        let mut interposer = Interposer::new();
        interposer.remove_shunt();
        assert!(!interposer.shunt_installed());
        let mut supply = PowerSupply::new();
        supply.set_volts(1.8).unwrap();
        supply.output_on();
        assert_eq!(interposer.rail_volts(2.5, &supply).unwrap(), 1.8);
    }
}
