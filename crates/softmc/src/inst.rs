//! DDR4 instruction set for test programs.

use serde::{Deserialize, Serialize};

/// One DDR4 command as issued by the test engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// Activate `row` in `bank`.
    Act {
        /// Target bank.
        bank: u32,
        /// Target row (logical address).
        row: u32,
    },
    /// Precharge `bank`.
    Pre {
        /// Target bank.
        bank: u32,
    },
    /// Read the 64-bit word at `column` of the open row in `bank`.
    Rd {
        /// Target bank.
        bank: u32,
        /// Target column.
        column: u32,
    },
    /// Write `data` to `column` of the open row in `bank`.
    Wr {
        /// Target bank.
        bank: u32,
        /// Target column.
        column: u32,
        /// 64-bit data word.
        data: u64,
    },
    /// Refresh command (never issued during the paper's tests — that is how
    /// TRR is disabled).
    Ref,
    /// Idle for the given number of nanoseconds.
    Wait {
        /// Idle duration (ns).
        ns: f64,
    },
}

impl Instruction {
    /// Whether this instruction targets `bank`.
    pub fn targets_bank(&self, bank: u32) -> bool {
        match self {
            Instruction::Act { bank: b, .. }
            | Instruction::Pre { bank: b }
            | Instruction::Rd { bank: b, .. }
            | Instruction::Wr { bank: b, .. } => *b == bank,
            Instruction::Ref | Instruction::Wait { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_bank_matches() {
        assert!(Instruction::Act { bank: 2, row: 5 }.targets_bank(2));
        assert!(!Instruction::Act { bank: 2, row: 5 }.targets_bank(3));
        assert!(Instruction::Pre { bank: 0 }.targets_bank(0));
        assert!(!Instruction::Ref.targets_bank(0));
        assert!(!Instruction::Wait { ns: 5.0 }.targets_bank(0));
    }

    #[test]
    fn serde_round_trip() {
        let i = Instruction::Wr {
            bank: 1,
            column: 7,
            data: 0xDEAD,
        };
        let json = serde_json::to_string(&i).unwrap();
        let back: Instruction = serde_json::from_str(&json).unwrap();
        assert_eq!(i, back);
    }
}
