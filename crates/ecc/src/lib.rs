//! SECDED error-correcting codes for the hammervolt study.
//!
//! §6.3 of the reproduced paper (Obsv. 14) shows that the data-retention bit
//! flips appearing under reduced `V_PP` can all be corrected by a "simple
//! single error correction double error detection (SECDED) ECC" over 64-bit
//! data words. This crate provides:
//!
//! - [`hamming`] — a Hamming SECDED(72,64) code: 64 data bits, 7 Hamming
//!   parity bits, and one overall-parity bit, with single-bit correction and
//!   double-bit detection,
//! - [`analysis`] — word-granularity error analysis over whole DRAM rows: how
//!   many 64-bit words in a row contain 1, 2, ... bit flips, and whether
//!   SECDED would have corrected them all (the exact question behind Obsv. 14
//!   and Fig. 11).
//!
//! # Example
//!
//! ```
//! use hammervolt_ecc::hamming::{Codeword, DecodeOutcome};
//!
//! let cw = Codeword::encode(0xDEAD_BEEF_0123_4567);
//! let corrupted = cw.with_bit_flipped(13);
//! match corrupted.decode() {
//!     DecodeOutcome::Corrected { data, .. } => assert_eq!(data, 0xDEAD_BEEF_0123_4567),
//!     other => panic!("expected correction, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod hamming;

pub use analysis::{analyze_row, RowWordAnalysis};
pub use hamming::{Codeword, DecodeOutcome};
