//! Hamming SECDED(72,64): single error correction, double error detection.
//!
//! Layout follows the classic extended-Hamming construction. Within the
//! 72-bit codeword, positions are numbered 0–71:
//!
//! - position 0 holds the *overall* parity bit (even parity over all 72 bits),
//! - positions 1, 2, 4, 8, 16, 32, 64 hold the seven Hamming parity bits,
//! - the remaining 64 positions hold data bits in ascending position order
//!   (data bit 0 at position 3, bit 1 at position 5, ...).
//!
//! Decoding computes the 7-bit syndrome (the XOR of the positions of all
//! set bits) plus the overall parity:
//!
//! | syndrome | overall parity | meaning                      |
//! |----------|----------------|------------------------------|
//! | 0        | even           | no error                     |
//! | 0        | odd            | overall-parity bit flipped   |
//! | ≠0       | odd            | single error at `syndrome`   |
//! | ≠0       | even           | double error (uncorrectable) |

use serde::{Deserialize, Serialize};

/// Number of data bits per codeword.
pub const DATA_BITS: u32 = 64;
/// Number of check bits (7 Hamming + 1 overall parity).
pub const CHECK_BITS: u32 = 8;
/// Total codeword length in bits.
pub const CODE_BITS: u32 = DATA_BITS + CHECK_BITS;

/// Returns `true` for codeword positions that hold parity bits.
fn is_parity_position(pos: u32) -> bool {
    pos == 0 || pos.is_power_of_two()
}

/// The 64 data positions in ascending order, computed once.
fn data_positions() -> [u32; 64] {
    let mut out = [0u32; 64];
    let mut idx = 0;
    let mut pos = 0;
    while idx < 64 {
        if !is_parity_position(pos) {
            out[idx] = pos;
            idx += 1;
        }
        pos += 1;
    }
    out
}

/// A 72-bit SECDED codeword stored in the low 72 bits of a `u128`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Codeword(u128);

/// Result of decoding a codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// The codeword is error-free; `data` is the stored word.
    Clean {
        /// Decoded 64-bit data word.
        data: u64,
    },
    /// A single bit error was found and corrected.
    Corrected {
        /// Decoded (corrected) 64-bit data word.
        data: u64,
        /// Position (0–71) of the corrected bit within the codeword.
        position: u32,
    },
    /// A double-bit error was detected; the data cannot be recovered.
    DoubleError,
}

impl Codeword {
    /// Encodes a 64-bit data word into a 72-bit SECDED codeword.
    pub fn encode(data: u64) -> Self {
        let positions = data_positions();
        let mut word: u128 = 0;
        for (i, &pos) in positions.iter().enumerate() {
            if (data >> i) & 1 == 1 {
                word |= 1u128 << pos;
            }
        }
        // Hamming parity bits: parity bit at position 2^k covers every
        // position whose k-th bit is set. Even parity.
        for k in 0..7 {
            let pbit = 1u32 << k;
            let mut parity = 0u32;
            for pos in 0..CODE_BITS {
                if pos != pbit && (pos & pbit) != 0 && (word >> pos) & 1 == 1 {
                    parity ^= 1;
                }
            }
            if parity == 1 {
                word |= 1u128 << pbit;
            }
        }
        // Overall parity over the other 71 bits (even parity over all 72).
        let ones = (word >> 1).count_ones() & 1;
        if ones == 1 {
            word |= 1;
        }
        Codeword(word)
    }

    /// Wraps raw codeword bits (low 72 bits of `raw`); upper bits are masked
    /// off.
    pub fn from_raw(raw: u128) -> Self {
        Codeword(raw & ((1u128 << CODE_BITS) - 1))
    }

    /// The raw 72 bits of the codeword.
    pub fn raw(&self) -> u128 {
        self.0
    }

    /// Returns a copy with the bit at codeword `position` (0–71) flipped.
    ///
    /// # Panics
    ///
    /// Panics if `position >= 72`.
    pub fn with_bit_flipped(&self, position: u32) -> Self {
        assert!(position < CODE_BITS, "position {position} out of range");
        Codeword(self.0 ^ (1u128 << position))
    }

    /// Extracts the data bits without any error checking.
    pub fn data_unchecked(&self) -> u64 {
        let positions = data_positions();
        let mut data = 0u64;
        for (i, &pos) in positions.iter().enumerate() {
            if (self.0 >> pos) & 1 == 1 {
                data |= 1u64 << i;
            }
        }
        data
    }

    /// Decodes the codeword, correcting a single-bit error and detecting
    /// double-bit errors.
    pub fn decode(&self) -> DecodeOutcome {
        // Syndrome: XOR of positions of set bits, restricted to Hamming
        // coverage (position 0 participates only in overall parity).
        let mut syndrome = 0u32;
        for pos in 1..CODE_BITS {
            if (self.0 >> pos) & 1 == 1 {
                syndrome ^= pos;
            }
        }
        let overall_odd = (self.0.count_ones() & 1) == 1;
        match (syndrome, overall_odd) {
            (0, false) => DecodeOutcome::Clean {
                data: self.data_unchecked(),
            },
            (0, true) => DecodeOutcome::Corrected {
                data: self.data_unchecked(),
                position: 0,
            },
            (s, true) => {
                if s >= CODE_BITS {
                    // A syndrome pointing outside the codeword means the error
                    // pattern is not a single flip; report it as uncorrectable.
                    return DecodeOutcome::DoubleError;
                }
                let fixed = Codeword(self.0 ^ (1u128 << s));
                DecodeOutcome::Corrected {
                    data: fixed.data_unchecked(),
                    position: s,
                }
            }
            (_, false) => DecodeOutcome::DoubleError,
        }
    }
}

/// Encodes, transmits with the given flipped positions, and decodes —
/// returning whether the data survived. Convenience for analyses that only
/// need the verdict.
///
/// # Panics
///
/// Panics if any position is `>= 72`.
pub fn survives_flips(data: u64, flips: &[u32]) -> bool {
    let mut cw = Codeword::encode(data);
    for &f in flips {
        cw = cw.with_bit_flipped(f);
    }
    match cw.decode() {
        DecodeOutcome::Clean { data: d } | DecodeOutcome::Corrected { data: d, .. } => d == data,
        DecodeOutcome::DoubleError => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: &[u64] = &[
        0,
        u64::MAX,
        0xDEAD_BEEF_0123_4567,
        0xAAAA_AAAA_AAAA_AAAA,
        0x5555_5555_5555_5555,
        1,
        1 << 63,
        0x0F0F_0F0F_F0F0_F0F0,
    ];

    #[test]
    fn clean_round_trip() {
        for &d in SAMPLES {
            let cw = Codeword::encode(d);
            assert_eq!(cw.decode(), DecodeOutcome::Clean { data: d });
            assert_eq!(cw.data_unchecked(), d);
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        for &d in SAMPLES {
            let cw = Codeword::encode(d);
            for pos in 0..CODE_BITS {
                let bad = cw.with_bit_flipped(pos);
                match bad.decode() {
                    DecodeOutcome::Corrected { data, position } => {
                        assert_eq!(data, d, "data recovered after flip at {pos}");
                        assert_eq!(position, pos, "flip localized");
                    }
                    other => panic!("flip at {pos} gave {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_double_bit_error_is_detected() {
        let d = 0xDEAD_BEEF_0123_4567u64;
        let cw = Codeword::encode(d);
        for a in 0..CODE_BITS {
            for b in (a + 1)..CODE_BITS {
                let bad = cw.with_bit_flipped(a).with_bit_flipped(b);
                assert_eq!(
                    bad.decode(),
                    DecodeOutcome::DoubleError,
                    "double flip at ({a},{b}) must be detected"
                );
            }
        }
    }

    #[test]
    fn codeword_weight_distance() {
        // SECDED code has minimum distance 4: distinct data words must differ
        // in at least 4 codeword bits.
        let a = Codeword::encode(0).raw();
        for bit in 0..64 {
            let b = Codeword::encode(1u64 << bit).raw();
            assert!((a ^ b).count_ones() >= 4, "distance too small at bit {bit}");
        }
    }

    #[test]
    fn overall_parity_is_even() {
        for &d in SAMPLES {
            assert_eq!(Codeword::encode(d).raw().count_ones() % 2, 0);
        }
    }

    #[test]
    fn from_raw_masks_upper_bits() {
        let cw = Codeword::from_raw(u128::MAX);
        assert_eq!(cw.raw() >> CODE_BITS, 0);
    }

    #[test]
    fn survives_flips_summary() {
        let d = 0x0123_4567_89AB_CDEF;
        assert!(survives_flips(d, &[]));
        assert!(survives_flips(d, &[7]));
        assert!(!survives_flips(d, &[7, 12]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_out_of_range_panics() {
        Codeword::encode(0).with_bit_flipped(72);
    }

    #[test]
    fn data_positions_are_the_non_parity_positions() {
        let ps = data_positions();
        assert_eq!(ps.len(), 64);
        for &p in &ps {
            assert!(!is_parity_position(p));
            assert!(p < CODE_BITS);
        }
        // strictly ascending
        for w in ps.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
