//! Word-granularity error analysis over DRAM rows.
//!
//! The paper's §6.3 asks, for each DRAM row operated at `V_PPmin`: how many
//! 64-bit data words in the row contain bit flips, with what multiplicity, and
//! would SECDED ECC have corrected them all (Obsv. 14)? Fig. 11 then plots the
//! distribution of rows by their erroneous-word count. [`analyze_row`]
//! answers both questions from a reference/readout bit pair.

use serde::{Deserialize, Serialize};

/// Word-level error characteristics of one DRAM row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowWordAnalysis {
    /// Total number of 64-bit words in the row.
    pub total_words: usize,
    /// Number of words with exactly one flipped bit (SECDED-correctable).
    pub words_with_one_flip: usize,
    /// Number of words with exactly two flipped bits (detectable, not
    /// correctable).
    pub words_with_two_flips: usize,
    /// Number of words with three or more flipped bits (may be miscorrected).
    pub words_with_many_flips: usize,
    /// Total flipped bits across the row.
    pub total_bit_flips: usize,
    /// Per-word flip counts for words that have at least one flip, in word
    /// order. (Kept sparse: clean words are omitted.)
    pub flips_per_erroneous_word: Vec<u32>,
}

impl RowWordAnalysis {
    /// Number of words containing at least one flipped bit.
    pub fn erroneous_words(&self) -> usize {
        self.words_with_one_flip + self.words_with_two_flips + self.words_with_many_flips
    }

    /// Whether the row is error-free.
    pub fn is_clean(&self) -> bool {
        self.total_bit_flips == 0
    }

    /// Whether SECDED(72,64) corrects every erroneous word in this row —
    /// i.e. no word carries more than one flip (Obsv. 14's criterion).
    pub fn secded_correctable(&self) -> bool {
        self.words_with_two_flips == 0 && self.words_with_many_flips == 0
    }

    /// Row bit error rate: flipped bits over total bits.
    pub fn bit_error_rate(&self) -> f64 {
        if self.total_words == 0 {
            0.0
        } else {
            self.total_bit_flips as f64 / (self.total_words as f64 * 64.0)
        }
    }
}

/// Compares a row readout against its reference content at 64-bit word
/// granularity.
///
/// Both slices are little-endian sequences of 64-bit words covering the whole
/// row. Slices of unequal length are compared over the shorter prefix; in the
/// study both always come from the same row geometry.
pub fn analyze_row(reference: &[u64], readout: &[u64]) -> RowWordAnalysis {
    let n = reference.len().min(readout.len());
    let mut one = 0usize;
    let mut two = 0usize;
    let mut many = 0usize;
    let mut total = 0usize;
    let mut sparse = Vec::new();
    for i in 0..n {
        let flips = (reference[i] ^ readout[i]).count_ones();
        if flips > 0 {
            sparse.push(flips);
            total += flips as usize;
            match flips {
                1 => one += 1,
                2 => two += 1,
                _ => many += 1,
            }
        }
    }
    RowWordAnalysis {
        total_words: n,
        words_with_one_flip: one,
        words_with_two_flips: two,
        words_with_many_flips: many,
        total_bit_flips: total,
        flips_per_erroneous_word: sparse,
    }
}

/// Aggregates Fig. 11's x-axis statistic over many rows: for each row, the
/// number of erroneous 64-bit words, returned in input order.
pub fn erroneous_word_counts(rows: &[RowWordAnalysis]) -> Vec<u64> {
    rows.iter().map(|r| r.erroneous_words() as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_row() {
        let row = vec![0xAAAA_AAAA_AAAA_AAAAu64; 16];
        let a = analyze_row(&row, &row);
        assert!(a.is_clean());
        assert!(a.secded_correctable());
        assert_eq!(a.erroneous_words(), 0);
        assert_eq!(a.bit_error_rate(), 0.0);
        assert!(a.flips_per_erroneous_word.is_empty());
    }

    #[test]
    fn single_flip_in_one_word() {
        let reference = vec![0u64; 8];
        let mut readout = reference.clone();
        readout[3] = 1 << 17;
        let a = analyze_row(&reference, &readout);
        assert_eq!(a.words_with_one_flip, 1);
        assert_eq!(a.erroneous_words(), 1);
        assert!(a.secded_correctable());
        assert_eq!(a.total_bit_flips, 1);
        assert!((a.bit_error_rate() - 1.0 / (8.0 * 64.0)).abs() < 1e-15);
    }

    #[test]
    fn double_flip_breaks_secded() {
        let reference = vec![0u64; 4];
        let mut readout = reference.clone();
        readout[0] = 0b11;
        let a = analyze_row(&reference, &readout);
        assert_eq!(a.words_with_two_flips, 1);
        assert!(!a.secded_correctable());
    }

    #[test]
    fn mixed_multiplicities() {
        let reference = vec![0u64; 5];
        let mut readout = reference.clone();
        readout[0] = 1; // one flip
        readout[1] = 0b101; // two flips
        readout[2] = 0b111; // three flips
        let a = analyze_row(&reference, &readout);
        assert_eq!(a.words_with_one_flip, 1);
        assert_eq!(a.words_with_two_flips, 1);
        assert_eq!(a.words_with_many_flips, 1);
        assert_eq!(a.total_bit_flips, 6);
        assert_eq!(a.flips_per_erroneous_word, vec![1, 2, 3]);
    }

    #[test]
    fn unequal_lengths_use_common_prefix() {
        let reference = vec![0u64; 4];
        let readout = vec![1u64; 2];
        let a = analyze_row(&reference, &readout);
        assert_eq!(a.total_words, 2);
        assert_eq!(a.words_with_one_flip, 2);
    }

    #[test]
    fn empty_row() {
        let a = analyze_row(&[], &[]);
        assert_eq!(a.total_words, 0);
        assert!(a.is_clean());
        assert_eq!(a.bit_error_rate(), 0.0);
    }

    #[test]
    fn erroneous_word_counts_across_rows() {
        let reference = vec![0u64; 4];
        let mut r1 = reference.clone();
        r1[0] = 1;
        r1[2] = 1;
        let mut r2 = reference.clone();
        r2[1] = 1;
        let rows = vec![
            analyze_row(&reference, &r1),
            analyze_row(&reference, &r2),
            analyze_row(&reference, &reference),
        ];
        assert_eq!(erroneous_word_counts(&rows), vec![2, 1, 0]);
    }
}
