//! Property-based tests for the SECDED code and row analysis.

use hammervolt_ecc::analysis::{analyze_row, erroneous_word_counts};
use hammervolt_ecc::hamming::{survives_flips, Codeword, DecodeOutcome, CODE_BITS};
use proptest::prelude::*;

proptest! {
    #[test]
    fn encode_decode_round_trip(data in any::<u64>()) {
        let cw = Codeword::encode(data);
        prop_assert_eq!(cw.decode(), DecodeOutcome::Clean { data });
    }

    #[test]
    fn any_single_flip_corrects(data in any::<u64>(), pos in 0u32..CODE_BITS) {
        let cw = Codeword::encode(data).with_bit_flipped(pos);
        match cw.decode() {
            DecodeOutcome::Corrected { data: d, position } => {
                prop_assert_eq!(d, data);
                prop_assert_eq!(position, pos);
            }
            other => prop_assert!(false, "flip at {} gave {:?}", pos, other),
        }
    }

    #[test]
    fn any_double_flip_detects(
        data in any::<u64>(),
        a in 0u32..CODE_BITS,
        b in 0u32..CODE_BITS,
    ) {
        prop_assume!(a != b);
        let cw = Codeword::encode(data).with_bit_flipped(a).with_bit_flipped(b);
        prop_assert_eq!(cw.decode(), DecodeOutcome::DoubleError);
        prop_assert!(!survives_flips(data, &[a, b]));
    }

    #[test]
    fn distinct_data_distinct_codewords(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let ca = Codeword::encode(a).raw();
        let cb = Codeword::encode(b).raw();
        prop_assert!(ca != cb);
        // minimum distance 4 for a SECDED code
        prop_assert!((ca ^ cb).count_ones() >= 4);
    }

    #[test]
    fn analysis_counts_are_consistent(
        reference in prop::collection::vec(any::<u64>(), 1..64),
        flips in prop::collection::vec((0usize..64, 0u32..64), 0..32),
    ) {
        let mut readout = reference.clone();
        for &(word, bit) in &flips {
            let w = word % readout.len();
            readout[w] ^= 1u64 << bit;
        }
        let a = analyze_row(&reference, &readout);
        let expected_flips: u32 = reference
            .iter()
            .zip(&readout)
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        prop_assert_eq!(a.total_bit_flips as u32, expected_flips);
        prop_assert_eq!(
            a.erroneous_words(),
            a.flips_per_erroneous_word.len()
        );
        let sparse_sum: u32 = a.flips_per_erroneous_word.iter().sum();
        prop_assert_eq!(sparse_sum, expected_flips);
        // secded verdict matches the per-word counts
        prop_assert_eq!(
            a.secded_correctable(),
            a.flips_per_erroneous_word.iter().all(|&c| c == 1)
        );
    }

    #[test]
    fn raw_round_trip_and_flip_involution(
        data in any::<u64>(),
        pos in 0u32..CODE_BITS,
    ) {
        let cw = Codeword::encode(data);
        prop_assert_eq!(Codeword::from_raw(cw.raw()), cw);
        // Flipping the same bit twice restores the codeword exactly.
        prop_assert_eq!(cw.with_bit_flipped(pos).with_bit_flipped(pos), cw);
        // A single flip survives SECDED; the empty fault set trivially does.
        prop_assert!(survives_flips(data, &[]));
        prop_assert!(survives_flips(data, &[pos]));
    }

    // Minimum distance 4: a weight-3 error can never land on a codeword,
    // so three flips must never decode as `Clean`. (Miscorrection to the
    // wrong data is allowed — that is the SECDED contract, not a bug.)
    #[test]
    fn triple_flip_never_reads_clean(
        data in any::<u64>(),
        a in 0u32..CODE_BITS,
        b in 0u32..CODE_BITS,
        c in 0u32..CODE_BITS,
    ) {
        prop_assume!(a != b && b != c && a != c);
        let cw = Codeword::encode(data)
            .with_bit_flipped(a)
            .with_bit_flipped(b)
            .with_bit_flipped(c);
        prop_assert!(
            !matches!(cw.decode(), DecodeOutcome::Clean { .. }),
            "weight-3 error decoded Clean at ({}, {}, {})", a, b, c
        );
    }

    // The corrected position reported by decode really is the flipped bit:
    // undoing it yields a codeword that decodes Clean to the original data.
    #[test]
    fn reported_correction_position_is_exact(
        data in any::<u64>(),
        pos in 0u32..CODE_BITS,
    ) {
        let faulty = Codeword::encode(data).with_bit_flipped(pos);
        match faulty.decode() {
            DecodeOutcome::Corrected { position, .. } => {
                let repaired = faulty.with_bit_flipped(position);
                prop_assert_eq!(repaired.decode(), DecodeOutcome::Clean { data });
            }
            other => prop_assert!(false, "single flip must correct, got {:?}", other),
        }
    }

    // Obsv. 13–15 plumbing: the BER reported for a row equals flips over
    // capacity, and the Fig. 11 histogram input preserves row order.
    #[test]
    fn ber_and_histogram_are_consistent(
        rows in prop::collection::vec(
            (
                prop::collection::vec(any::<u64>(), 1..16),
                prop::collection::vec((0usize..16, 0u32..64), 0..8),
            ),
            1..8,
        ),
    ) {
        let analyses: Vec<_> = rows
            .iter()
            .map(|(reference, flips)| {
                let mut readout = reference.clone();
                for &(word, bit) in flips {
                    let w = word % readout.len();
                    readout[w] ^= 1u64 << bit;
                }
                analyze_row(reference, &readout)
            })
            .collect();
        for a in &analyses {
            let expected =
                a.total_bit_flips as f64 / (a.total_words as f64 * 64.0);
            prop_assert!((a.bit_error_rate() - expected).abs() < 1e-15);
            prop_assert!(a.bit_error_rate() <= 1.0);
            prop_assert_eq!(a.is_clean(), a.total_bit_flips == 0);
        }
        let histogram = erroneous_word_counts(&analyses);
        prop_assert_eq!(histogram.len(), analyses.len());
        for (h, a) in histogram.iter().zip(&analyses) {
            prop_assert_eq!(*h, a.erroneous_words() as u64);
        }
    }
}
