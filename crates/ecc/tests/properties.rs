//! Property-based tests for the SECDED code and row analysis.

use hammervolt_ecc::analysis::analyze_row;
use hammervolt_ecc::hamming::{survives_flips, Codeword, DecodeOutcome, CODE_BITS};
use proptest::prelude::*;

proptest! {
    #[test]
    fn encode_decode_round_trip(data in any::<u64>()) {
        let cw = Codeword::encode(data);
        prop_assert_eq!(cw.decode(), DecodeOutcome::Clean { data });
    }

    #[test]
    fn any_single_flip_corrects(data in any::<u64>(), pos in 0u32..CODE_BITS) {
        let cw = Codeword::encode(data).with_bit_flipped(pos);
        match cw.decode() {
            DecodeOutcome::Corrected { data: d, position } => {
                prop_assert_eq!(d, data);
                prop_assert_eq!(position, pos);
            }
            other => prop_assert!(false, "flip at {} gave {:?}", pos, other),
        }
    }

    #[test]
    fn any_double_flip_detects(
        data in any::<u64>(),
        a in 0u32..CODE_BITS,
        b in 0u32..CODE_BITS,
    ) {
        prop_assume!(a != b);
        let cw = Codeword::encode(data).with_bit_flipped(a).with_bit_flipped(b);
        prop_assert_eq!(cw.decode(), DecodeOutcome::DoubleError);
        prop_assert!(!survives_flips(data, &[a, b]));
    }

    #[test]
    fn distinct_data_distinct_codewords(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let ca = Codeword::encode(a).raw();
        let cb = Codeword::encode(b).raw();
        prop_assert!(ca != cb);
        // minimum distance 4 for a SECDED code
        prop_assert!((ca ^ cb).count_ones() >= 4);
    }

    #[test]
    fn analysis_counts_are_consistent(
        reference in prop::collection::vec(any::<u64>(), 1..64),
        flips in prop::collection::vec((0usize..64, 0u32..64), 0..32),
    ) {
        let mut readout = reference.clone();
        for &(word, bit) in &flips {
            let w = word % readout.len();
            readout[w] ^= 1u64 << bit;
        }
        let a = analyze_row(&reference, &readout);
        let expected_flips: u32 = reference
            .iter()
            .zip(&readout)
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        prop_assert_eq!(a.total_bit_flips as u32, expected_flips);
        prop_assert_eq!(
            a.erroneous_words(),
            a.flips_per_erroneous_word.len()
        );
        let sparse_sum: u32 = a.flips_per_erroneous_word.iter().sum();
        prop_assert_eq!(sparse_sum, expected_flips);
        // secded verdict matches the per-word counts
        prop_assert_eq!(
            a.secded_correctable(),
            a.flips_per_erroneous_word.iter().all(|&c| c == 1)
        );
    }
}
