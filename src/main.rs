//! `hammervolt` CLI: run the study's experiments against the simulated
//! module fleet and dump machine-readable records.
//!
//! ```text
//! hammervolt sweep  [MODULE..]   # Alg. 1 RowHammer ladder sweep → JSONL
//! hammervolt trcd   [MODULE..]   # Alg. 2 activation-latency sweep → JSONL
//! hammervolt retention [MODULE..]# Alg. 3 retention sweep → JSONL
//! hammervolt vppmin              # V_PPmin search across all modules
//! hammervolt list                # Table 3 module inventory
//! ```
//!
//! Set `HAMMERVOLT_ROWS` (default 8) to change the per-chunk row sample.

use hammervolt::dram::registry::{self, ModuleId};
use hammervolt::study::records;
use hammervolt::study::study::{retention_sweep, rowhammer_sweep, trcd_sweep, StudyConfig};
use std::io::Write as _;

fn parse_modules(args: &[String]) -> Vec<ModuleId> {
    if args.is_empty() {
        return ModuleId::ALL.to_vec();
    }
    args.iter()
        .map(|a| {
            ModuleId::ALL
                .iter()
                .copied()
                .find(|m| m.label().eq_ignore_ascii_case(a))
                .unwrap_or_else(|| {
                    eprintln!("unknown module {a:?}; valid labels are A0..A9, B0..B9, C0..C9");
                    std::process::exit(2);
                })
        })
        .collect()
}

fn config(modules: Vec<ModuleId>) -> StudyConfig {
    let rows = std::env::var("HAMMERVOLT_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    StudyConfig {
        rows_per_chunk: rows,
        modules,
        ..StudyConfig::quick()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r.to_vec()),
        None => {
            eprintln!("usage: hammervolt <sweep|trcd|retention|vppmin|list> [modules..]");
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match cmd {
        "list" => {
            for id in ModuleId::ALL {
                let s = registry::spec(id);
                println!(
                    "{}  {:<24} {:>5} {:>5} MT/s {}  V_PPmin {:.1} V  HC_first {:>7.1}K  BER {:.2e}",
                    id.label(),
                    s.dimm_model,
                    s.density.to_string(),
                    s.frequency_mts,
                    s.org,
                    s.vpp_min,
                    s.hc_first_nominal / 1e3,
                    s.ber_nominal,
                );
            }
        }
        "vppmin" => {
            let cfg = config(parse_modules(&rest));
            for &id in &cfg.modules {
                let mut mc = cfg.bring_up(id).expect("bring-up");
                let vppmin = mc.find_vppmin().expect("search");
                println!("{}: V_PPmin = {vppmin:.1} V", id.label());
            }
        }
        "sweep" => {
            let cfg = config(parse_modules(&rest));
            for &id in &cfg.modules {
                eprintln!("sweeping {} ...", id.label());
                let sweep = rowhammer_sweep(&cfg, id).expect("sweep");
                records::write_jsonl(&sweep.records, &mut out).expect("write");
            }
        }
        "trcd" => {
            let cfg = config(parse_modules(&rest));
            for &id in &cfg.modules {
                eprintln!("sweeping {} ...", id.label());
                let sweep = trcd_sweep(&cfg, id, 4).expect("sweep");
                records::write_jsonl(&sweep.records, &mut out).expect("write");
            }
        }
        "retention" => {
            let cfg = config(parse_modules(&rest));
            for &id in &cfg.modules {
                eprintln!("sweeping {} ...", id.label());
                let sweep = retention_sweep(&cfg, id).expect("sweep");
                records::write_jsonl(&sweep.records, &mut out).expect("write");
            }
        }
        other => {
            eprintln!("unknown command {other:?}");
            std::process::exit(2);
        }
    }
    out.flush().expect("flush stdout");
}
