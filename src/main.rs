//! `hammervolt` CLI: run the study's experiments against the simulated
//! module fleet and dump machine-readable records.
//!
//! ```text
//! hammervolt sweep  [MODULE..]   # Alg. 1 RowHammer ladder sweep → JSONL
//! hammervolt trcd   [MODULE..]   # Alg. 2 activation-latency sweep → JSONL
//! hammervolt retention [MODULE..]# Alg. 3 retention sweep → JSONL
//! hammervolt vppmin              # V_PPmin search across all modules
//! hammervolt list                # Table 3 module inventory
//! ```
//!
//! The sweep commands run on the parallel execution engine:
//!
//! - `--jobs N` (or `HAMMERVOLT_JOBS`) sets the worker count; `0` means one
//!   per CPU. Output is byte-identical for any worker count.
//! - `--cache-dir PATH` (or `HAMMERVOLT_CACHE_DIR`) enables the
//!   content-addressed sweep cache: completed module sweeps are persisted
//!   and re-runs with the same configuration skip simulation entirely.
//! - `--resume` (or `HAMMERVOLT_RESUME=1`; requires `--cache-dir`) persists
//!   every completed `(module, chunk)` work unit as a sealed checkpoint and
//!   restores finished units on re-run. Checkpoints are written atomically
//!   as units finish, so an interrupted run (Ctrl-C, kill, crash) leaves
//!   valid partial results on disk and the next invocation re-runs only the
//!   unfinished chunks — with byte-identical final output.
//!
//! `HAMMERVOLT_SCALE` selects the protocol (`smoke`, `quick` (default), or
//! `paper`); `HAMMERVOLT_ROWS` overrides the per-chunk row sample.
//!
//! Observability (side-channel only; record output is byte-identical with
//! these on or off):
//!
//! - `--trace-out PATH` (or `HAMMERVOLT_TRACE_OUT`) streams JSONL spans and
//!   events to a file,
//! - `--manifest-out PATH` (or `HAMMERVOLT_MANIFEST_OUT`) writes the run
//!   manifest — config hash, per-phase wall times, counters, histograms,
//! - `--metrics` (or `HAMMERVOLT_METRICS=1`) collects counters and prints a
//!   summary to stderr at exit,
//! - `--progress` (or `HAMMERVOLT_PROGRESS=1`) keeps a rate-limited progress
//!   line on stderr during sweeps.

use hammervolt::dram::registry::{self, ModuleId};
use hammervolt::obs::cli::ObsOptions;
use hammervolt::obs::manifest;
use hammervolt::study::exec::{self, ExecConfig};
use hammervolt::study::records;
use hammervolt::study::study::StudyConfig;
use std::io::Write as _;

const USAGE: &str = "usage: hammervolt <sweep|trcd|retention|vppmin|list> \
     [--jobs N] [--cache-dir PATH] [--resume] \
     [--trace-out PATH] [--manifest-out PATH] [--metrics] [--progress] [modules..]";

/// Flags and positional module labels pulled out of the raw argument list.
struct Cli {
    exec: ExecConfig,
    modules: Vec<ModuleId>,
}

fn parse_cli(args: &[String]) -> Cli {
    let mut exec = ExecConfig::from_env();
    let mut labels: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = |name: &str| {
            inline
                .clone()
                .or_else(|| it.next().cloned())
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value\n{USAGE}");
                    std::process::exit(2);
                })
        };
        match flag {
            "--jobs" | "-j" => {
                let v = value("--jobs");
                exec.jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs expects a number, got {v:?}");
                    std::process::exit(2);
                });
            }
            "--cache-dir" => exec.cache_dir = Some(value("--cache-dir").into()),
            "--resume" => exec.checkpoints = true,
            f if f.starts_with('-') => {
                eprintln!("unknown flag {f:?}\n{USAGE}");
                std::process::exit(2);
            }
            _ => labels.push(arg.clone()),
        }
    }
    if exec.checkpoints && exec.cache_dir.is_none() {
        eprintln!("--resume needs a checkpoint directory: pass --cache-dir PATH\n{USAGE}");
        std::process::exit(2);
    }
    Cli {
        exec,
        modules: parse_modules(&labels),
    }
}

fn parse_modules(args: &[String]) -> Vec<ModuleId> {
    if args.is_empty() {
        return Vec::new();
    }
    args.iter()
        .map(|a| {
            ModuleId::ALL
                .iter()
                .copied()
                .find(|m| m.label().eq_ignore_ascii_case(a))
                .unwrap_or_else(|| {
                    eprintln!("unknown module {a:?}; valid labels are A0..A9, B0..B9, C0..C9");
                    std::process::exit(2);
                })
        })
        .collect()
}

/// The study configuration for this invocation: `HAMMERVOLT_SCALE` picks the
/// protocol, `HAMMERVOLT_ROWS` overrides the row sample, and any module
/// labels on the command line restrict the fleet.
fn config(modules: Vec<ModuleId>) -> StudyConfig {
    let mut cfg = match std::env::var("HAMMERVOLT_SCALE").as_deref() {
        Ok("paper") => StudyConfig::paper(),
        Ok("smoke") => StudyConfig::smoke(),
        _ => StudyConfig {
            rows_per_chunk: 8,
            ..StudyConfig::quick()
        },
    };
    if let Some(rows) = std::env::var("HAMMERVOLT_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        cfg.rows_per_chunk = rows;
    }
    if !modules.is_empty() {
        cfg.modules = modules;
    }
    cfg
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut obs = ObsOptions::from_env();
    obs.take_from_args(&mut args);
    let _obs = obs.install("hammervolt");
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r.to_vec()),
        None => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match cmd {
        "list" => {
            for id in ModuleId::ALL {
                let s = registry::spec(id);
                println!(
                    "{}  {:<24} {:>5} {:>5} MT/s {}  V_PPmin {:.1} V  HC_first {:>7.1}K  BER {:.2e}",
                    id.label(),
                    s.dimm_model,
                    s.density.to_string(),
                    s.frequency_mts,
                    s.org,
                    s.vpp_min,
                    s.hc_first_nominal / 1e3,
                    s.ber_nominal,
                );
            }
        }
        "vppmin" => {
            let cli = parse_cli(&rest);
            let cfg = config(cli.modules);
            for &id in &cfg.modules {
                let mut mc = cfg.bring_up(id).expect("bring-up");
                let vppmin = mc.find_vppmin().expect("search");
                println!("{}: V_PPmin = {vppmin:.1} V", id.label());
            }
        }
        "sweep" => {
            let cli = parse_cli(&rest);
            let cfg = config(cli.modules);
            eprintln!(
                "sweeping {} module(s) with {} worker(s) ...",
                cfg.modules.len(),
                cli.exec.effective_jobs()
            );
            let sweeps = exec::rowhammer_sweeps(&cfg, &cli.exec).expect("sweep");
            let _emit = manifest::phase("emit");
            for sweep in &sweeps {
                records::write_jsonl(&sweep.records, &mut out).expect("write");
            }
        }
        "trcd" => {
            let cli = parse_cli(&rest);
            let cfg = config(cli.modules);
            eprintln!(
                "sweeping {} module(s) with {} worker(s) ...",
                cfg.modules.len(),
                cli.exec.effective_jobs()
            );
            let sweeps = exec::trcd_sweeps(&cfg, 4, &cli.exec).expect("sweep");
            let _emit = manifest::phase("emit");
            for sweep in &sweeps {
                records::write_jsonl(&sweep.records, &mut out).expect("write");
            }
        }
        "retention" => {
            let cli = parse_cli(&rest);
            let cfg = config(cli.modules);
            eprintln!(
                "sweeping {} module(s) with {} worker(s) ...",
                cfg.modules.len(),
                cli.exec.effective_jobs()
            );
            let sweeps = exec::retention_sweeps(&cfg, &cli.exec).expect("sweep");
            let _emit = manifest::phase("emit");
            for sweep in &sweeps {
                records::write_jsonl(&sweep.records, &mut out).expect("write");
            }
        }
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            std::process::exit(2);
        }
    }
    out.flush().expect("flush stdout");
}
