//! # hammervolt
//!
//! A full-system software reproduction of *"Understanding RowHammer Under
//! Reduced Wordline Voltage: An Experimental Study Using Real DRAM Devices"*
//! (Yağlıkçı et al., DSN 2022).
//!
//! The original study characterizes 272 real DDR4 chips with an FPGA-based
//! SoftMC infrastructure and SPICE simulations. This workspace rebuilds every
//! substrate in Rust:
//!
//! - [`dram`] — a behavioral DDR4 device model whose cell physics respond to
//!   the wordline voltage `V_PP` (RowHammer disturbance, charge restoration
//!   saturation, activation latency, retention decay), calibrated per-module
//!   against the paper's Table 3,
//! - [`softmc`] — a SoftMC-style test-infrastructure model (instruction
//!   programs, command engine, external `V_PP` supply, thermal PID control),
//! - [`spice`] — a compact SPICE-class transient circuit simulator used to
//!   reproduce the paper's Figs. 8 and 9,
//! - [`ecc`] — SECDED(72,64) Hamming coding for the §6.3 mitigation analysis,
//! - [`stats`] — the statistical machinery behind the paper's figures,
//! - [`study`] — the paper's methodology itself: Algorithms 1–3, WCDP
//!   selection, adjacency reverse engineering, and study orchestration,
//! - [`obs`] — the observability layer: structured tracing spans, a metrics
//!   registry, run manifests, and the progress line. Strictly a side
//!   channel — study output is byte-identical with it on or off.
//!
//! # Quickstart
//!
//! ```
//! use hammervolt::dram::registry;
//! use hammervolt::softmc::SoftMc;
//! use hammervolt::study::alg1::{self, Alg1Config};
//!
//! // Bring up module B3 on the test infrastructure at 50 °C, nominal V_PP.
//! let module = registry::instantiate(registry::ModuleId::B3, 0x5AFA21).unwrap();
//! let mut mc = SoftMc::new(module);
//! mc.set_vpp(2.5).unwrap();
//!
//! // Measure HC_first for one victim row with Alg. 1's binary search.
//! let cfg = Alg1Config::fast();
//! let result = alg1::measure_row(&mut mc, 0, 1000, &cfg).unwrap();
//! assert!(result.hc_first.unwrap() > 0);
//! ```
//!
//! (The constant `0x5AFA21` above is a module seed — any `u64` works; results
//! are deterministic per seed.)

pub use hammervolt_core as study;
pub use hammervolt_dram as dram;
pub use hammervolt_ecc as ecc;
pub use hammervolt_obs as obs;
pub use hammervolt_softmc as softmc;
pub use hammervolt_spice as spice;
pub use hammervolt_stats as stats;
