//! SPICE activation study: bitline and cell waveforms plus the
//! restoration-saturation sweep of Obsv. 10.
//!
//! Run with `cargo run --release --example spice_waveform`.

use hammervolt::spice::dram_cell::{ActivationSim, DramCellParams};
use hammervolt::spice::ptm;

fn main() {
    let params = DramCellParams::default();
    let sim = ActivationSim::new(params);

    println!(
        "DRAM cell activation at nominal V_PP = {} V:",
        ptm::VPP_NOMINAL
    );
    let res = sim.run(ptm::VPP_NOMINAL).expect("transient");
    println!(
        "  t_RCDmin = {:.2} ns, t_RASmin = {:.2} ns, restored cell = {:.3} V",
        res.t_rcd_min.unwrap() * 1e9,
        res.t_ras_min.unwrap() * 1e9,
        res.v_cell_final,
    );

    // A coarse ASCII strip-chart of the two node voltages.
    println!("\n  time   bitline  cell");
    let n = res.times.len();
    for i in (0..n).step_by(n / 16) {
        let t = res.times[i] * 1e9;
        let bl = res.v_bitline[i];
        let cell = res.v_cell[i];
        let bar = |v: f64| "#".repeat((v / 1.3 * 30.0).max(0.0) as usize);
        println!("  {t:5.1}ns {bl:5.2}V {cell:5.2}V  |{}", bar(bl));
    }

    println!("\nrestoration saturation vs V_PP (Obsv. 10):");
    println!("  V_PP   simulated  analytic  % of V_DD");
    for vpp10 in (15..=25).rev().step_by(1) {
        let vpp = vpp10 as f64 / 10.0;
        let res = sim.run(vpp).expect("transient");
        let analytic = params.restore_saturation(vpp);
        println!(
            "  {vpp:.1} V  {:.3} V    {analytic:.3} V   {:.1} %",
            res.v_cell_final,
            res.v_cell_final / params.vdd * 100.0,
        );
    }
    println!("\n(paper: full V_DD at ≥ 2.0 V; −4.1 % / −11.0 % / −18.1 % at 1.9 / 1.8 / 1.7 V)");
}
