//! Full `V_PP` ladder sweep of one module: the per-module slice of Figs. 3
//! and 5, printed as a table.
//!
//! Run with `cargo run --release --example vpp_sweep -- [module]`
//! (module defaults to B3; any Table 3 label like `A0` or `C5` works).

use hammervolt::dram::registry::ModuleId;
use hammervolt::stats::table::AsciiTable;
use hammervolt::study::study::{rowhammer_sweep, StudyConfig};

fn main() {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "B3".to_string());
    let id = ModuleId::ALL
        .iter()
        .copied()
        .find(|m| m.label().eq_ignore_ascii_case(&wanted))
        .unwrap_or_else(|| panic!("unknown module label {wanted:?}; use A0..C9"));
    let cfg = StudyConfig {
        rows_per_chunk: 6,
        ..StudyConfig::quick_subset(&[id])
    };
    println!("V_PP ladder sweep of module {id} (24 rows, Alg. 1 fast config)\n");
    let sweep = rowhammer_sweep(&cfg, id).expect("sweep");
    let ber = sweep.normalized_ber();
    let hc = sweep.normalized_hc_first();
    let mut t = AsciiTable::new(vec![
        "V_PP (V)".into(),
        "norm. BER".into(),
        "BER 90% band".into(),
        "norm. HC_first".into(),
        "HC 90% band".into(),
    ]);
    for (b, h) in ber.iter().zip(&hc) {
        t.add_row(vec![
            format!("{:.1}", b.vpp),
            format!("{:.3}", b.mean),
            format!("[{:.2}, {:.2}]", b.band.lo, b.band.hi),
            format!("{:.3}", h.mean),
            format!("[{:.2}, {:.2}]", h.band.lo, h.band.hi),
        ]);
    }
    print!("{}", t.render());
    let spec = sweep
        .records
        .first()
        .map(|_| hammervolt::dram::registry::spec(id));
    if let Some(spec) = spec {
        println!(
            "\nTable 3 reference: HC_first ratio at V_PPmin = {:.3}, BER ratio = {:.3}",
            spec.hc_multiplier_target(),
            spec.ber_ratio_at_vppmin(),
        );
    }
}
