//! Quickstart: bring a module up on the test infrastructure, find its
//! `V_PPmin`, and measure one row's RowHammer characteristics at nominal and
//! reduced wordline voltage.
//!
//! Run with `cargo run --release --example quickstart`.

use hammervolt::dram::geometry::Geometry;
use hammervolt::dram::module::DramModule;
use hammervolt::dram::registry::{self, ModuleId};
use hammervolt::softmc::SoftMc;
use hammervolt::study::alg1::{self, Alg1Config};

fn main() {
    // Instantiate module B3 — the paper's strongest V_PP responder — as a
    // specific specimen (the seed). The reduced geometry keeps this example
    // fast; drop `with_geometry` for the full 8 Gb die.
    let module = DramModule::with_geometry(
        registry::spec(ModuleId::B3),
        0x5AFA21,
        Geometry::small_test(),
    )
    .expect("module");
    println!(
        "module {} ({}, {} {}), V_PPmin per Table 3: {:.1} V",
        module.spec().id,
        module.spec().dimm_model,
        module.spec().density,
        module.spec().org,
        module.spec().vpp_min,
    );

    // Bring-up: shunt removed, external supply at 2.5 V, thermal loop at 50 °C.
    let mut mc = SoftMc::new(module);
    println!(
        "bring-up complete: V_PP = {:.1} V, T = {:.1} °C",
        mc.vpp(),
        mc.module().temperature_c()
    );

    // §4.1: walk V_PP down in 0.1 V steps until the module stops responding.
    let vppmin = mc.find_vppmin().expect("vppmin search");
    println!("measured V_PPmin = {vppmin:.1} V");

    // Alg. 1 on one victim row, at nominal V_PP and at V_PPmin. Row-to-row
    // strength varies a lot (that is the point of HC_first being a per-row
    // quantity), so scan for the first sampled row that flips within the
    // search range.
    let cfg = Alg1Config::fast();
    mc.set_vpp(2.5).expect("nominal V_PP");
    let (victim, nominal) = (100..160)
        .find_map(|row| {
            let m = alg1::measure_row(&mut mc, 0, row, &cfg).ok()?;
            m.hc_first.is_some().then_some((row, m))
        })
        .expect("some row in 100..160 flips at nominal V_PP");
    mc.set_vpp(vppmin).expect("reduced V_PP");
    let reduced = alg1::measure_row(&mut mc, 0, victim, &cfg).expect("alg1");

    let show = |label: &str, m: &alg1::RowMeasurement| {
        println!(
            "{label}: WCDP {}, HC_first {}, BER at 300K hammers {:.2e}",
            m.wcdp,
            m.hc_first
                .map(|h| format!("{:.1}K", h as f64 / 1e3))
                .unwrap_or_else(|| "> search ceiling".into()),
            m.ber,
        );
    };
    show(&format!("row {victim} @ 2.5 V"), &nominal);
    show(&format!("row {victim} @ {vppmin:.1} V"), &reduced);

    if let (Some(n), Some(r)) = (nominal.hc_first, reduced.hc_first) {
        println!(
            "normalized HC_first = {:.3} (an attacker needs {:.1} % more hammers at V_PPmin)",
            r as f64 / n as f64,
            (r as f64 / n as f64 - 1.0) * 100.0,
        );
    }
    if nominal.ber > 0.0 {
        println!(
            "normalized BER      = {:.3} (the same attack flips {:.1} % fewer bits)",
            reduced.ber / nominal.ber,
            (1.0 - reduced.ber / nominal.ber) * 100.0,
        );
    }
}
