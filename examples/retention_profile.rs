//! Retention profiling: Alg. 3 on one module at 80 °C across refresh windows
//! and `V_PP` levels, with the §6.3 mitigation verdicts (SECDED, selective
//! refresh).
//!
//! Run with `cargo run --release --example retention_profile`.

use hammervolt::dram::geometry::Geometry;
use hammervolt::dram::module::DramModule;
use hammervolt::dram::registry::{self, ModuleId};
use hammervolt::softmc::SoftMc;
use hammervolt::study::alg3::{self, Alg3Config};
use hammervolt::study::mitigation::ecc_analysis;
use hammervolt::study::patterns::DataPattern;

fn main() {
    // B6 is one of the seven Table 3 modules that exhibit 64 ms retention
    // failures at V_PPmin (Obsv. 13).
    let module =
        DramModule::with_geometry(registry::spec(ModuleId::B6), 11, Geometry::small_test())
            .expect("module");
    let mut mc = SoftMc::new(module);
    mc.set_temperature(80.0)
        .expect("retention tests run at 80 °C");
    let vppmin = mc.find_vppmin().expect("vppmin");
    println!("module B6 at 80 °C, V_PPmin = {vppmin:.1} V\n");

    // Alg. 3 ladder on a few rows at nominal and reduced V_PP.
    let cfg = Alg3Config::fast();
    for vpp in [2.5, vppmin] {
        mc.set_vpp(vpp).expect("set vpp");
        println!("V_PP = {vpp:.1} V:");
        for row in [40u32, 41, 42, 43] {
            let m = alg3::measure_row(&mut mc, 0, row, &cfg).expect("alg3");
            let first = m
                .first_failing_window_s()
                .map(|w| format!("{:.0} ms", w * 1e3))
                .unwrap_or_else(|| "none".into());
            println!(
                "  row {row}: first failing window {first}, BER at 16 s = {:.2e}",
                m.ber_at(16.0).unwrap_or(0.0),
            );
        }
    }

    // §6.3 mitigation analysis at V_PPmin: are the 64 ms failures
    // SECDED-correctable, and how many rows would selective refresh touch?
    mc.set_vpp(vppmin).expect("set vpp");
    let rows: Vec<u32> = (4..300).collect();
    for window in [0.064, 0.128] {
        let a = ecc_analysis(&mut mc, 0, &rows, window, DataPattern::CheckerboardAa)
            .expect("ecc analysis");
        println!(
            "\nt_REFW = {:.0} ms at V_PPmin: {} / {} rows erroneous ({:.1} %)",
            window * 1e3,
            a.rows_erroneous,
            a.rows_tested,
            a.selective_refresh_fraction() * 100.0,
        );
        println!(
            "  SECDED corrects everything: {} (Obsv. 14 expects true)",
            a.secded_correctable
        );
        println!(
            "  → doubling the refresh rate for only these rows eliminates the flips \
             (Obsv. 15)"
        );
    }
}
