//! Security scenario: a double-sided RowHammer attack against a victim row
//! holding page-table-like data, and the three defenses the study speaks to:
//! reduced wordline voltage, in-DRAM TRR (when refresh runs), and SECDED ECC.
//!
//! Run with `cargo run --release --example attack_demo`.

use hammervolt::dram::geometry::Geometry;
use hammervolt::dram::module::DramModule;
use hammervolt::dram::registry::{self, ModuleId};
use hammervolt::ecc::hamming::{Codeword, DecodeOutcome};
use hammervolt::softmc::program::Program;
use hammervolt::softmc::SoftMc;

/// A fake page-table entry: physical frame number plus permission bits.
fn pte(frame: u64, writable: bool) -> u64 {
    (frame << 12) | 0x27 | if writable { 0x2 } else { 0x0 }
}

fn count_flips(readout: &[u64], reference: &[u64]) -> u32 {
    readout
        .iter()
        .zip(reference)
        .map(|(a, b)| (a ^ b).count_ones())
        .sum()
}

fn run_attack(mc: &mut SoftMc, victim: u32, hc: u64) -> (Vec<u64>, Vec<u64>) {
    let (below, above) = mc.module().mapping().physical_neighbors(victim);
    let (below, above) = (below.unwrap(), above.unwrap());
    // Victim holds "page table" content; the attacker controls the aggressor
    // rows and fills them with the worst-case inverse pattern.
    let columns = mc.module().geometry().columns_per_row;
    let reference: Vec<u64> = (0..columns as u64)
        .map(|i| pte(0x4_0000 + i, false))
        .collect();
    for (column, &word) in reference.iter().enumerate() {
        let _ = (column, word);
    }
    // write the victim row word by word
    {
        let mut p = Program::new();
        p.push(hammervolt::softmc::Instruction::Act {
            bank: 0,
            row: victim,
        });
        for (column, &word) in reference.iter().enumerate() {
            p.push(hammervolt::softmc::Instruction::Wr {
                bank: 0,
                column: column as u32,
                data: word,
            });
        }
        p.push(hammervolt::softmc::Instruction::Pre { bank: 0 });
        mc.run(&p).expect("victim init");
    }
    mc.init_row(0, below, !0u64).expect("aggressor init");
    mc.init_row(0, above, !0u64).expect("aggressor init");
    mc.hammer_double_sided(0, below, above, hc).expect("hammer");
    let readout = mc.read_row_conservative(0, victim).expect("readout");
    (reference, readout)
}

fn main() {
    let hc = 300_000;
    let victim = 120;

    // --- 1. The attack at nominal V_PP ---------------------------------
    // B3: hammerable at 300K and the strongest V_PP responder in Table 3.
    let module = DramModule::with_geometry(registry::spec(ModuleId::B3), 7, Geometry::small_test())
        .expect("module");
    let mut mc = SoftMc::new(module);
    let (reference, readout) = run_attack(&mut mc, victim, hc);
    let flips_nominal = count_flips(&readout, &reference);
    println!(
        "attack at V_PP = 2.5 V: {} hammers per aggressor → {flips_nominal} bit flips \
         in the victim page table",
        hc
    );
    if let Some((column, (got, want))) = readout
        .iter()
        .zip(&reference)
        .enumerate()
        .find(|(_, (a, b))| a != b)
        .map(|(c, (a, b))| (c, (*a, *b)))
    {
        let was_writable = want & 0x2 != 0;
        let now_writable = got & 0x2 != 0;
        println!(
            "  e.g. PTE at column {column}: {want:#018x} → {got:#018x}{}",
            if !was_writable && now_writable {
                "  (!! page silently became writable)"
            } else {
                ""
            }
        );
    }

    // --- 2. The same attack at reduced V_PP ----------------------------
    let module = DramModule::with_geometry(registry::spec(ModuleId::B3), 7, Geometry::small_test())
        .expect("module");
    let mut mc = SoftMc::new(module);
    let vppmin = mc.find_vppmin().expect("vppmin");
    mc.set_vpp(vppmin).expect("set");
    let (reference, readout) = run_attack(&mut mc, victim, hc);
    let flips_reduced = count_flips(&readout, &reference);
    println!(
        "attack at V_PP = {vppmin:.1} V: same attack → {flips_reduced} bit flips \
         ({}{:.1} % vs nominal)",
        if flips_reduced <= flips_nominal {
            "−"
        } else {
            "+"
        },
        (flips_nominal as f64 - flips_reduced as f64).abs() / flips_nominal.max(1) as f64 * 100.0,
    );

    // --- 3. SECDED over the victim words -------------------------------
    // A stored SECDED(72,64) codeword corrects any single flipped bit and
    // detects two; words with more flips can silently miscorrect. Classify
    // the attack's damage per word and demonstrate one correction.
    let analysis = hammervolt::ecc::analysis::analyze_row(&reference, &readout);
    println!(
        "SECDED(72,64) on the corrupted words: {} single-bit (corrected), \
         {} double-bit (detected only), {} multi-bit (may miscorrect)",
        analysis.words_with_one_flip, analysis.words_with_two_flips, analysis.words_with_many_flips,
    );
    if let Some((&got, &want)) = readout
        .iter()
        .zip(&reference)
        .find(|(a, b)| (*a ^ *b).count_ones() == 1)
    {
        let flipped_data_bit = (got ^ want).trailing_zeros();
        // Re-create the stored codeword and flip the corresponding data bit
        // in codeword space (data bit i lives at a known position).
        let clean = Codeword::encode(want);
        let corrupted_data = want ^ (1 << flipped_data_bit);
        let delta = clean.raw() ^ Codeword::encode(corrupted_data).raw();
        // flip ONLY the data-bit position (lowest set bit of the delta that
        // is not a recomputed parity bit): emulate the in-array flip
        let data_pos = delta.trailing_zeros();
        let stored = clean.with_bit_flipped(data_pos);
        match stored.decode() {
            DecodeOutcome::Corrected { data, position } => println!(
                "  demo: flip at codeword position {position} corrected, data {}",
                if data == want {
                    "recovered exactly"
                } else {
                    "NOT recovered"
                }
            ),
            other => println!("  demo: unexpected decode outcome {other:?}"),
        }
    }
    println!(
        "multi-bit words defeat SECDED — which is why the paper positions \
         V_PP scaling as *complementary* to existing defenses (§3)"
    );
}
