//! Reverse-engineering demo: recover a module's internal row-address
//! scrambling scheme purely by hammering and observing which rows flip —
//! the §4.2 "Finding Physically Adjacent Rows" procedure.
//!
//! Run with `cargo run --release --example reverse_engineering`.

use hammervolt::dram::geometry::Geometry;
use hammervolt::dram::module::DramModule;
use hammervolt::dram::registry::{self, ModuleId};
use hammervolt::softmc::SoftMc;
use hammervolt::study::adjacency::{discover_aggressors, infer_scheme, probe, ProbeConfig};

fn main() {
    for id in [ModuleId::A3, ModuleId::B0, ModuleId::C2] {
        let module = DramModule::with_geometry(registry::spec(id), 5, Geometry::small_test())
            .expect("module");
        let truth = module.mapping().scheme();
        let mut mc = SoftMc::new(module);
        println!("== module {id} ({}) ==", mc.module().spec().mfr);

        // One raw probe: hammer row 101 hard, see who flips.
        let cfg = ProbeConfig::default();
        let result = probe(&mut mc, 0, 101, &cfg).expect("probe");
        println!(
            "  single-sided probe of row 101 ({} hammers): {} victim rows flipped",
            cfg.hammer_count,
            result.victims.len()
        );
        for &(row, flips) in result.victims.iter().take(4) {
            println!("    row {row}: {flips} flips");
        }

        // Scheme inference across a block of probes.
        let inferred = infer_scheme(&mut mc, 0, 96, &cfg).expect("inference");
        println!(
            "  inferred scheme: {inferred:?}  (ground truth: {truth:?}, match: {})",
            inferred == Some(truth)
        );

        // Aggressor prediction for a victim, versus the device's actual map.
        let victim = 101;
        let found = discover_aggressors(&mut mc, 0, victim, &cfg)
            .expect("discovery")
            .expect("scheme inferred");
        let gt = mc.module().mapping().physical_neighbors(victim);
        println!(
            "  double-sided aggressors for victim {victim}: discovered {:?}, ground truth ({}, {})\n",
            found,
            gt.0.unwrap(),
            gt.1.unwrap(),
        );
    }
    println!(
        "Under scrambled mappings (Mfrs. B and C) the aggressors are NOT the \
         victim's logical ±1 — attacking the wrong rows would miss the victim \
         entirely, which is why the paper reverse engineers the layout first."
    );
}
