//! Cross-crate integration tests asserting the paper's headline claims hold
//! on the simulated devices, end to end through the full methodology stack
//! (device model → SoftMC infrastructure → Algorithms 1–3 → aggregation).
//!
//! These use reduced row counts and iterations, so tolerances are loose; the
//! bench harnesses reproduce the precise figures.

use hammervolt::dram::registry::ModuleId;
use hammervolt::study::study::{aggregate_findings, rowhammer_sweep, trcd_sweep, StudyConfig};

fn tiny(modules: &[ModuleId]) -> StudyConfig {
    StudyConfig {
        rows_per_chunk: 4,
        ..StudyConfig::quick_subset(modules)
    }
}

#[test]
fn takeaway1_hc_first_rises_and_ber_falls_on_average() {
    // One representative module per vendor.
    let cfg = tiny(&[ModuleId::A1, ModuleId::B3, ModuleId::C5]);
    let sweeps: Vec<_> = cfg
        .modules
        .iter()
        .map(|&m| rowhammer_sweep(&cfg, m).expect("sweep"))
        .collect();
    let f = aggregate_findings(&sweeps).expect("aggregate");
    assert!(
        f.mean_hc_change > 0.02,
        "mean HC_first change {:.3} should be clearly positive",
        f.mean_hc_change
    );
    assert!(
        f.mean_ber_change < -0.05,
        "mean BER change {:.3} should be clearly negative",
        f.mean_ber_change
    );
    assert!(f.frac_rows_hc_increased > f.frac_rows_hc_decreased);
    assert!(f.frac_rows_ber_decreased > f.frac_rows_ber_increased);
}

#[test]
fn obsv5_minority_modules_show_opposite_direction() {
    // C8's Table 3 record: HC_first *falls* at V_PPmin (9.5K from 11.4K).
    let cfg = tiny(&[ModuleId::C8]);
    let sweep = rowhammer_sweep(&cfg, ModuleId::C8).expect("sweep");
    let hc = sweep.normalized_hc_first();
    let last = hc.last().expect("levels");
    assert!(
        last.mean < 1.0,
        "C8 mean normalized HC_first at V_PPmin = {:.3}, expected < 1",
        last.mean
    );
}

#[test]
fn vppmin_extremes_match_table3_through_the_infrastructure() {
    for (id, expected) in [(ModuleId::A0, 1.4), (ModuleId::A5, 2.4)] {
        let cfg = tiny(&[id]);
        let mut mc = cfg.bring_up(id).expect("bring-up");
        let vppmin = mc.find_vppmin().expect("search");
        assert!(
            (vppmin - expected).abs() < 1e-9,
            "{id:?}: measured V_PPmin {vppmin}, Table 3 says {expected}"
        );
    }
}

#[test]
fn section61_failing_modules_and_their_fixes() {
    // A0 exceeds nominal t_RCD at V_PPmin but works at 24 ns; C0 stays
    // within nominal (two ends of Obsv. 7).
    let cfg = tiny(&[ModuleId::A0, ModuleId::C0]);

    let a0 = trcd_sweep(&cfg, ModuleId::A0, 2).expect("sweep");
    let worst_a0 = a0
        .worst_per_level()
        .last()
        .and_then(|&(_, w)| w)
        .expect("complete sweep");
    assert!(
        worst_a0 > 13.5,
        "A0 worst t_RCDmin {worst_a0} must exceed nominal"
    );
    assert!(worst_a0 <= 24.0, "…but 24 ns must suffice (got {worst_a0})");

    let c0 = trcd_sweep(&cfg, ModuleId::C0, 2).expect("sweep");
    let worst_c0 = c0
        .worst_per_level()
        .last()
        .and_then(|&(_, w)| w)
        .expect("complete sweep");
    assert!(
        worst_c0 <= 13.5,
        "C0 must stay reliable at nominal t_RCD, worst = {worst_c0}"
    );
}

#[test]
fn guardband_shrinks_but_stays_positive_for_healthy_modules() {
    use hammervolt::study::mitigation::{guardband, guardband_reduction};
    let cfg = tiny(&[ModuleId::C4]);
    let sweep = trcd_sweep(&cfg, ModuleId::C4, 2).expect("sweep");
    let at = |vpp: f64| -> Vec<Option<f64>> {
        sweep
            .records
            .iter()
            .filter(|r| hammervolt::study::study::level_matches(r.vpp, vpp))
            .map(|r| r.t_rcd_min_ns)
            .collect()
    };
    let nominal = guardband(&at(2.5)).expect("nominal");
    let reduced = guardband(&at(sweep.vpp_min)).expect("reduced");
    assert!(nominal.reliable_at_nominal && reduced.reliable_at_nominal);
    let loss = guardband_reduction(&nominal, &reduced).expect("reduction");
    assert!(
        (0.0..0.9).contains(&loss),
        "guardband loss {loss:.3} out of plausible range"
    );
}

#[test]
fn b3_reaches_the_strongest_response() {
    // The paper's maximum effects come from B3 at 1.6 V: +85.8 % HC_first
    // for the best rows, −60 % module-level BER. With a tiny sample we check
    // looser bounds.
    let cfg = tiny(&[ModuleId::B3]);
    let sweep = rowhammer_sweep(&cfg, ModuleId::B3).expect("sweep");
    let (ber, hc) = sweep.row_ratios_at_vppmin();
    let mean_ber = ber.iter().sum::<f64>() / ber.len() as f64;
    assert!(
        mean_ber < 0.7,
        "B3 mean normalized BER {mean_ber:.3} should show a strong reduction"
    );
    let max_hc = hc.iter().cloned().fold(0.0, f64::max);
    assert!(
        max_hc > 1.25,
        "B3's best row gain {max_hc:.3} should be large"
    );
}
