//! Integration tests for the parallel execution engine: byte-identical
//! output across worker counts (API and CLI) and the content-addressed
//! sweep cache.

use hammervolt::dram::registry::ModuleId;
use hammervolt::study::exec::{retention_sweeps, rowhammer_sweeps, trcd_sweeps, ExecConfig};
use hammervolt::study::study::{ModuleHammerSweep, StudyConfig};
use std::path::PathBuf;
use std::process::Command;

fn tiny(modules: &[ModuleId]) -> StudyConfig {
    StudyConfig {
        rows_per_chunk: 3,
        ..StudyConfig::quick_subset(modules)
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hammervolt-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The acceptance criterion: every sweep kind serializes byte-identically
/// for 1 worker, 4 workers, and one worker per CPU.
#[test]
fn all_sweep_kinds_are_deterministic_across_worker_counts() {
    let cfg = tiny(&[ModuleId::A0, ModuleId::B3]);
    let ncpu = std::thread::available_parallelism().map_or(2, |n| n.get());
    let runs: Vec<(String, String, String)> = [1, 4, ncpu]
        .iter()
        .map(|&jobs| {
            let exec = ExecConfig {
                jobs,
                cache_dir: None,
            };
            (
                serde_json::to_string(&rowhammer_sweeps(&cfg, &exec).unwrap()).unwrap(),
                serde_json::to_string(&trcd_sweeps(&cfg, 3, &exec).unwrap()).unwrap(),
                serde_json::to_string(&retention_sweeps(&cfg, &exec).unwrap()).unwrap(),
            )
        })
        .collect();
    for run in &runs[1..] {
        assert_eq!(runs[0].0, run.0, "RowHammer sweeps must not depend on jobs");
        assert_eq!(runs[0].1, run.1, "t_RCD sweeps must not depend on jobs");
        assert_eq!(runs[0].2, run.2, "retention sweeps must not depend on jobs");
    }
}

/// `hammervolt sweep --jobs N` emits byte-identical JSONL for any N.
#[test]
fn cli_sweep_is_byte_identical_across_jobs() {
    let run = |jobs: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_hammervolt"))
            .args(["sweep", "--jobs", jobs, "B3"])
            .env("HAMMERVOLT_SCALE", "smoke")
            .env("HAMMERVOLT_ROWS", "2")
            .env_remove("HAMMERVOLT_CACHE_DIR")
            .env_remove("HAMMERVOLT_JOBS")
            .output()
            .expect("run hammervolt");
        assert!(out.status.success(), "CLI failed: {out:?}");
        out.stdout
    };
    let serial = run("1");
    assert!(!serial.is_empty());
    assert_eq!(
        serial,
        run("4"),
        "--jobs 4 must match --jobs 1 byte-for-byte"
    );
    assert_eq!(serial, run("0"), "--jobs 0 (auto) must match as well");
}

/// A warm cache serves the sweep from disk with zero re-simulation and
/// byte-identical output. Zero re-simulation is proven by tampering with the
/// cached entry: the tampered values come back verbatim, which simulation
/// could never produce.
#[test]
fn warm_cache_round_trips_without_resimulation() {
    let cfg = tiny(&[ModuleId::B3]);
    let dir = temp_dir("cache");
    let exec = ExecConfig {
        jobs: 2,
        cache_dir: Some(dir.clone()),
    };
    let cold = rowhammer_sweeps(&cfg, &exec).unwrap();
    let warm = rowhammer_sweeps(&cfg, &exec).unwrap();
    assert_eq!(
        serde_json::to_string(&cold).unwrap(),
        serde_json::to_string(&warm).unwrap(),
        "warm cache must reproduce the cold run byte-for-byte"
    );

    // Tamper with the single cache entry and re-run: the sentinel BER can
    // only appear if the result was loaded, not recomputed.
    let entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(entries.len(), 1, "one module, one cache entry");
    let text = std::fs::read_to_string(&entries[0]).unwrap();
    let mut sweep: ModuleHammerSweep = serde_json::from_str(text.trim()).unwrap();
    const SENTINEL: f64 = 0.123_456_789;
    sweep.records[0].ber = SENTINEL;
    std::fs::write(&entries[0], serde_json::to_string(&sweep).unwrap()).unwrap();

    let tampered = rowhammer_sweeps(&cfg, &exec).unwrap();
    assert_eq!(
        tampered[0].records[0].ber, SENTINEL,
        "cache hit must be served from disk, not re-simulated"
    );

    // A different configuration misses the tampered entry and recomputes.
    let other = StudyConfig {
        rows_per_chunk: 4,
        ..cfg
    };
    let fresh = rowhammer_sweeps(&other, &exec).unwrap();
    assert!(fresh[0].records.iter().all(|r| r.ber != SENTINEL));

    let _ = std::fs::remove_dir_all(&dir);
}
