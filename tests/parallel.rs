//! Integration tests for the parallel execution engine: byte-identical
//! output across worker counts (API and CLI) and the content-addressed
//! sweep cache.

use hammervolt::dram::registry::ModuleId;
use hammervolt::study::exec::{
    retention_sweeps, rowhammer_sweeps, seal_entry, sweep_key, trcd_sweeps, ExecConfig,
};
use hammervolt::study::study::StudyConfig;
use std::path::PathBuf;
use std::process::Command;

fn tiny(modules: &[ModuleId]) -> StudyConfig {
    StudyConfig {
        rows_per_chunk: 3,
        ..StudyConfig::quick_subset(modules)
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hammervolt-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The acceptance criterion: every sweep kind serializes byte-identically
/// for 1 worker, 4 workers, and one worker per CPU.
#[test]
fn all_sweep_kinds_are_deterministic_across_worker_counts() {
    let cfg = tiny(&[ModuleId::A0, ModuleId::B3]);
    let ncpu = std::thread::available_parallelism().map_or(2, |n| n.get());
    let runs: Vec<(String, String, String)> = [1, 4, ncpu]
        .iter()
        .map(|&jobs| {
            let exec = ExecConfig {
                jobs,
                cache_dir: None,
                ..ExecConfig::default()
            };
            (
                serde_json::to_string(&rowhammer_sweeps(&cfg, &exec).unwrap()).unwrap(),
                serde_json::to_string(&trcd_sweeps(&cfg, 3, &exec).unwrap()).unwrap(),
                serde_json::to_string(&retention_sweeps(&cfg, &exec).unwrap()).unwrap(),
            )
        })
        .collect();
    for run in &runs[1..] {
        assert_eq!(runs[0].0, run.0, "RowHammer sweeps must not depend on jobs");
        assert_eq!(runs[0].1, run.1, "t_RCD sweeps must not depend on jobs");
        assert_eq!(runs[0].2, run.2, "retention sweeps must not depend on jobs");
    }
}

/// `hammervolt sweep --jobs N` emits byte-identical JSONL for any N.
#[test]
fn cli_sweep_is_byte_identical_across_jobs() {
    let run = |jobs: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_hammervolt"))
            .args(["sweep", "--jobs", jobs, "B3"])
            .env("HAMMERVOLT_SCALE", "smoke")
            .env("HAMMERVOLT_ROWS", "2")
            .env_remove("HAMMERVOLT_CACHE_DIR")
            .env_remove("HAMMERVOLT_JOBS")
            .output()
            .expect("run hammervolt");
        assert!(out.status.success(), "CLI failed: {out:?}");
        out.stdout
    };
    let serial = run("1");
    assert!(!serial.is_empty());
    assert_eq!(
        serial,
        run("4"),
        "--jobs 4 must match --jobs 1 byte-for-byte"
    );
    assert_eq!(serial, run("0"), "--jobs 0 (auto) must match as well");
}

/// A warm cache serves every sweep kind from disk with byte-identical
/// output: cold (compute + store) and warm (load) runs must serialize
/// identically for the rowhammer, t_RCD (Alg. 2), and retention (Alg. 3)
/// sweeps alike.
#[test]
fn warm_cache_round_trips_every_sweep_kind() {
    let cfg = tiny(&[ModuleId::B3]);
    let dir = temp_dir("cache-kinds");
    let exec = ExecConfig {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        ..ExecConfig::default()
    };
    let cold = (
        serde_json::to_string(&rowhammer_sweeps(&cfg, &exec).unwrap()).unwrap(),
        serde_json::to_string(&trcd_sweeps(&cfg, 3, &exec).unwrap()).unwrap(),
        serde_json::to_string(&retention_sweeps(&cfg, &exec).unwrap()).unwrap(),
    );
    let warm = (
        serde_json::to_string(&rowhammer_sweeps(&cfg, &exec).unwrap()).unwrap(),
        serde_json::to_string(&trcd_sweeps(&cfg, 3, &exec).unwrap()).unwrap(),
        serde_json::to_string(&retention_sweeps(&cfg, &exec).unwrap()).unwrap(),
    );
    assert_eq!(cold.0, warm.0, "warm rowhammer sweep must match cold");
    assert_eq!(cold.1, warm.1, "warm t_RCD sweep must match cold");
    assert_eq!(cold.2, warm.2, "warm retention sweep must match cold");

    // Warm runs must also match a cache-less serial run: the cache may never
    // change results, only skip re-simulation.
    let serial = ExecConfig::serial();
    assert_eq!(
        cold.0,
        serde_json::to_string(&rowhammer_sweeps(&cfg, &serial).unwrap()).unwrap()
    );
    assert_eq!(
        cold.1,
        serde_json::to_string(&trcd_sweeps(&cfg, 3, &serial).unwrap()).unwrap()
    );
    assert_eq!(
        cold.2,
        serde_json::to_string(&retention_sweeps(&cfg, &serial).unwrap()).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cache entries are checksummed: a tampered payload is detected and
/// recomputed, while a correctly *sealed* forged entry is served verbatim —
/// which both closes the silent-corruption hole and proves warm hits come
/// from disk rather than re-simulation.
#[test]
fn cache_detects_tampering_but_serves_sealed_entries() {
    let cfg = tiny(&[ModuleId::B3]);
    let dir = temp_dir("cache-seal");
    let exec = ExecConfig {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        ..ExecConfig::default()
    };
    let cold = rowhammer_sweeps(&cfg, &exec).unwrap();
    let entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(entries.len(), 1, "one module, one cache entry");
    const SENTINEL: f64 = 0.123_456_789;

    // Naive tamper: rewrite the payload without re-sealing. The checksum
    // mismatch must force a recompute of the true result.
    let key = sweep_key(&cfg, ModuleId::B3, "hammer", 0);
    let mut sweep = cold[0].clone();
    sweep.records[0].ber = SENTINEL;
    let tampered_line = seal_entry(key, &serde_json::to_string(&sweep).unwrap());
    // Corrupt the sealed line's checksum field so it no longer matches.
    let broken = tampered_line.replacen("\"checksum\":\"", "\"checksum\":\"0", 1);
    std::fs::write(&entries[0], broken).unwrap();
    let recomputed = rowhammer_sweeps(&cfg, &exec).unwrap();
    assert_ne!(
        recomputed[0].records[0].ber, SENTINEL,
        "poisoned entry must be recomputed, not served"
    );
    assert_eq!(
        serde_json::to_string(&recomputed).unwrap(),
        serde_json::to_string(&cold).unwrap(),
    );

    // Forged-but-valid entry: sealing the sentinel payload with the correct
    // key makes it indistinguishable from a real entry, so it is served —
    // proving the warm path performs zero re-simulation.
    std::fs::write(
        &entries[0],
        seal_entry(key, &serde_json::to_string(&sweep).unwrap()) + "\n",
    )
    .unwrap();
    let served = rowhammer_sweeps(&cfg, &exec).unwrap();
    assert_eq!(
        served[0].records[0].ber, SENTINEL,
        "a correctly sealed entry must be served from disk"
    );

    // A different configuration derives a different key, misses the forged
    // entry, and recomputes.
    let other = StudyConfig {
        rows_per_chunk: 4,
        ..cfg
    };
    let fresh = rowhammer_sweeps(&other, &exec).unwrap();
    assert!(fresh[0].records.iter().all(|r| r.ber != SENTINEL));

    let _ = std::fs::remove_dir_all(&dir);
}
