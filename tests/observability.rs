//! Integration tests for the observability layer's core contract: tracing,
//! metrics, and the run manifest are a pure *side channel*. Study output
//! must be byte-identical with instrumentation fully enabled, while the
//! emitted spans must faithfully mirror the execution engine's shard
//! structure and the manifest must carry the full counter set.
//!
//! The observability state (flags, sink, registry, manifest tables) is
//! process-wide, so the in-process tests serialize on a lock; the CLI tests
//! exercise separate `hammervolt` processes and need no coordination.

use hammervolt::dram::registry::ModuleId;
use hammervolt::obs;
use hammervolt::obs::MemorySink;
use hammervolt::study::exec::{rowhammer_sweeps, ExecConfig};
use hammervolt::study::study::StudyConfig;
use serde::Value;
use std::process::Command;
use std::sync::{Arc, Mutex};

/// Serializes the in-process tests: they flip process-wide obs state.
static OBS_TEST_LOCK: Mutex<()> = Mutex::new(());

fn tiny(modules: &[ModuleId]) -> StudyConfig {
    StudyConfig {
        rows_per_chunk: 2,
        ..StudyConfig::quick_subset(modules)
    }
}

fn canon<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serialize")
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

/// Parses every sink line, returning the JSON values.
fn parse_events(lines: &[String]) -> Vec<Value> {
    lines
        .iter()
        .map(|l| {
            serde_json::from_str::<Value>(l)
                .unwrap_or_else(|e| panic!("trace line is not JSON ({e}): {l}"))
        })
        .collect()
}

/// Tracing and metrics fully on must not change the sweep payload by a
/// single byte, and the span stream must mirror the engine's
/// (module, bank, chunk) shard structure: one `exec.sweep` root, one
/// `exec.shard` child per work unit, and every Alg. 1 span parented inside
/// a shard.
#[test]
fn traced_sweep_is_byte_identical_and_spans_mirror_shards() {
    let _guard = OBS_TEST_LOCK.lock().unwrap();
    let cfg = tiny(&[ModuleId::A0, ModuleId::B3]);
    let exec = ExecConfig::with_jobs(3);
    let plain = canon(&rowhammer_sweeps(&cfg, &exec).expect("plain sweep"));

    obs::metrics::reset();
    obs::manifest::reset();
    let sink = Arc::new(MemorySink::new());
    obs::set_sink(Some(sink.clone()));
    obs::set_tracing(true);
    obs::set_metrics(true);
    let traced = canon(&rowhammer_sweeps(&cfg, &exec).expect("traced sweep"));
    obs::set_tracing(false);
    obs::set_metrics(false);
    obs::set_sink(None);

    assert_eq!(
        plain, traced,
        "tracing+metrics must not perturb sweep output"
    );

    let units = obs::metrics::counter_value("exec_units");
    assert!(units > 0, "the sweep must count its work units");
    assert_eq!(
        obs::metrics::counter_value("exec_modules"),
        cfg.modules.len() as u64
    );

    let events = parse_events(&sink.lines());
    let spans: Vec<&Value> = events
        .iter()
        .filter(|v| as_str(v.field("type")) == Some("span"))
        .collect();

    // Ids are unique; parents reference real spans (or 0 for roots).
    let mut ids: Vec<u64> = spans
        .iter()
        .map(|s| as_u64(s.field("id")).expect("span id"))
        .collect();
    let n = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "span ids must be unique");
    for s in &spans {
        let parent = as_u64(s.field("parent")).expect("span parent");
        assert!(
            parent == 0 || ids.binary_search(&parent).is_ok(),
            "span parent {parent} not in the stream"
        );
    }

    // Exactly one sweep root for this run, with the hammer kind.
    let sweep_roots: Vec<&&Value> = spans
        .iter()
        .filter(|s| as_str(s.field("name")) == Some("exec.sweep"))
        .collect();
    assert_eq!(sweep_roots.len(), 1, "one sweep, one exec.sweep span");
    let root = sweep_roots[0];
    assert_eq!(as_str(root.field("kind")), Some("hammer"));
    assert_eq!(as_u64(root.field("parent")), Some(0));
    assert_eq!(
        as_u64(root.field("modules")),
        Some(cfg.modules.len() as u64)
    );
    let root_id = as_u64(root.field("id")).unwrap();

    // One shard span per work unit, every one a child of the sweep root,
    // each naming its module, bank, chunk, and row count.
    let shards: Vec<&&Value> = spans
        .iter()
        .filter(|s| as_str(s.field("name")) == Some("exec.shard"))
        .collect();
    assert_eq!(
        shards.len() as u64,
        units,
        "span stream must contain one exec.shard per work unit"
    );
    let mut shard_ids = Vec::new();
    for s in &shards {
        assert_eq!(as_u64(s.field("parent")), Some(root_id));
        let module = as_str(s.field("module")).expect("shard module");
        assert!(
            cfg.modules.iter().any(|m| m.label() == module),
            "shard names unknown module {module}"
        );
        assert_eq!(as_u64(s.field("bank")), Some(u64::from(cfg.bank)));
        assert!(as_u64(s.field("chunk")).is_some());
        assert!(as_u64(s.field("rows")).unwrap() > 0);
        shard_ids.push(as_u64(s.field("id")).unwrap());
    }
    shard_ids.sort_unstable();

    // Alg. 1 rows nest inside shards (cross-thread parenting works).
    let rows: Vec<&&Value> = spans
        .iter()
        .filter(|s| as_str(s.field("name")) == Some("alg1.measure_row"))
        .collect();
    assert!(!rows.is_empty(), "hammer sweep must trace alg1.measure_row");
    for r in &rows {
        let parent = as_u64(r.field("parent")).unwrap();
        assert!(
            shard_ids.binary_search(&parent).is_ok(),
            "alg1.measure_row must be parented under an exec.shard span"
        );
    }
}

/// A metrics-enabled sweep produces a manifest whose deterministic subset
/// carries the config hash and the full counter set — at least ten
/// counters, including the cache and SoftMC command-mix families — plus
/// a per-phase wall-time table.
#[test]
fn manifest_carries_counters_phases_and_config_hash() {
    let _guard = OBS_TEST_LOCK.lock().unwrap();
    let cfg = tiny(&[ModuleId::C5]);
    obs::metrics::reset();
    obs::manifest::reset();
    obs::set_metrics(true);
    rowhammer_sweeps(&cfg, &ExecConfig::serial()).expect("sweep");
    let stable = obs::manifest::stable_subset_json();
    let full = obs::manifest::build_manifest("obs-test", 1, "");
    obs::set_metrics(false);
    obs::manifest::reset();

    let v: Value = serde_json::from_str(&stable).expect("stable subset parses");
    let hash = as_str(v.field("config_hash")).expect("config_hash");
    assert_eq!(hash.len(), 16, "config hash is 16 hex digits: {hash:?}");
    assert!(hash.chars().all(|c| c.is_ascii_hexdigit()));

    let counters = v.field("counters").as_object().expect("counters object");
    assert!(
        counters.len() >= 10,
        "expected at least 10 counters, got {}: {stable}",
        counters.len()
    );
    for required in [
        "cache_hits",
        "cache_misses",
        "cache_corrupt_recovered",
        "exec_modules",
        "exec_units",
        "alg1_rows",
        "softmc_programs",
        "softmc_act",
        "softmc_pre",
        "softmc_rd",
        "softmc_wr",
        "dram_disturb_events",
    ] {
        assert!(
            counters.iter().any(|(k, _)| k == required),
            "counter {required} missing from manifest: {stable}"
        );
    }
    // The sweep really did issue commands: the mix is non-trivial.
    let get = |name: &str| {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| as_u64(v))
            .unwrap()
    };
    assert!(get("softmc_act") > 0);
    assert!(get("softmc_rd") > 0);
    assert!(get("alg1_rows") > 0);

    let fv: Value = serde_json::from_str(&full).expect("full manifest parses");
    assert_eq!(as_u64(fv.field("schema")), Some(1));
    let phases = fv.field("phases").as_object().expect("phases object");
    assert!(
        phases.iter().any(|(k, _)| k == "sweep:hammer"),
        "manifest must record the sweep:hammer phase: {full}"
    );
    assert!(
        fv.field("histograms").as_object().is_some(),
        "manifest must carry histogram snapshots"
    );
}

fn run_cli(args: &[&str], extra_env: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hammervolt"));
    cmd.args(args)
        .env("HAMMERVOLT_SCALE", "smoke")
        .env("HAMMERVOLT_ROWS", "2")
        .env_remove("HAMMERVOLT_CACHE_DIR")
        .env_remove("HAMMERVOLT_JOBS")
        .env_remove("HAMMERVOLT_TRACE_OUT")
        .env_remove("HAMMERVOLT_MANIFEST_OUT")
        .env_remove("HAMMERVOLT_METRICS")
        .env_remove("HAMMERVOLT_PROGRESS");
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    cmd.output().expect("run hammervolt")
}

/// End-to-end through the real binary: `--trace-out`/`--manifest-out`/
/// `--metrics` leave stdout byte-identical, write a schema-valid trace and
/// manifest, and print the counter summary on stderr.
#[test]
fn cli_trace_and_manifest_leave_stdout_byte_identical() {
    let dir = std::env::temp_dir().join(format!("hammervolt-obs-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.jsonl");
    let manifest = dir.join("manifest.json");

    let plain = run_cli(&["sweep", "--jobs", "2", "B3"], &[]);
    assert!(plain.status.success(), "plain run failed: {plain:?}");
    assert!(!plain.stdout.is_empty());

    let traced = run_cli(
        &[
            "sweep",
            "--jobs",
            "2",
            "--trace-out",
            trace.to_str().unwrap(),
            "--manifest-out",
            manifest.to_str().unwrap(),
            "--metrics",
            "B3",
        ],
        &[],
    );
    assert!(traced.status.success(), "traced run failed: {traced:?}");
    assert_eq!(
        plain.stdout, traced.stdout,
        "observability flags must not change the record stream"
    );
    let stderr = String::from_utf8_lossy(&traced.stderr);
    assert!(
        stderr.contains("run metrics"),
        "--metrics must print a counter summary, got: {stderr}"
    );

    // The trace: every line JSON with a type, at least one span, exactly
    // one trailing manifest event.
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let lines: Vec<String> = text.lines().map(str::to_string).collect();
    let events = parse_events(&lines);
    let mut span_count = 0usize;
    let mut manifest_count = 0usize;
    for v in &events {
        match as_str(v.field("type")).expect("event type") {
            "span" => span_count += 1,
            "manifest" => manifest_count += 1,
            "warn" => {}
            other => panic!("unexpected event type {other:?}"),
        }
    }
    assert!(span_count > 0, "trace must contain spans");
    assert_eq!(manifest_count, 1, "trace ends with one manifest event");
    assert_eq!(
        as_str(events.last().unwrap().field("type")),
        Some("manifest"),
        "manifest event must be the final line"
    );

    // The manifest file: schema-valid with the counter floor.
    let mtext = std::fs::read_to_string(&manifest).expect("manifest written");
    let mv: Value = serde_json::from_str(mtext.trim()).expect("manifest parses");
    assert_eq!(as_u64(mv.field("schema")), Some(1));
    assert_eq!(as_str(mv.field("bin")), Some("hammervolt"));
    assert!(as_u64(mv.field("wall_us")).unwrap() > 0);
    let counters = mv.field("counters").as_object().expect("counters");
    assert!(counters.len() >= 10, "manifest counter floor: {mtext}");
    let phases = mv.field("phases").as_object().expect("phases");
    assert!(
        phases.iter().any(|(k, _)| k == "sweep:hammer") && phases.iter().any(|(k, _)| k == "emit"),
        "manifest must time the sweep and emit phases: {mtext}"
    );

    // The embedded manifest event matches the file's deterministic core.
    let embedded = events.last().unwrap().field("data");
    assert_eq!(embedded.field("counters"), mv.field("counters"));
    assert_eq!(
        embedded.field("annotations").field("config_hash"),
        mv.field("annotations").field("config_hash")
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A bad `HAMMERVOLT_JOBS` must warn on stderr and fall back to auto — not
/// silently swallow the typo (the pre-observability behavior).
#[test]
fn cli_warns_on_unparsable_jobs_env() {
    let out = run_cli(&["sweep", "B3"], &[("HAMMERVOLT_JOBS", "three")]);
    assert!(out.status.success(), "run must still succeed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("HAMMERVOLT_JOBS") && stderr.contains("warning"),
        "expected a warning about HAMMERVOLT_JOBS, got: {stderr}"
    );

    // And the fallback run still produces the exact same records.
    let clean = run_cli(&["sweep", "B3"], &[]);
    assert_eq!(out.stdout, clean.stdout);
}
