//! End-to-end integration tests spanning every crate: device bring-up,
//! interference isolation, TRR interaction, determinism, and the
//! SPICE-vs-behavioral-model consistency checks.

use hammervolt::dram::geometry::Geometry;
use hammervolt::dram::module::DramModule;
use hammervolt::dram::physics;
use hammervolt::dram::registry::{self, ModuleId};
use hammervolt::softmc::program::Program;
use hammervolt::softmc::{Instruction, SoftMc};
use hammervolt::spice::dram_cell::DramCellParams;
use hammervolt::study::alg1::{self, Alg1Config};

fn session(id: ModuleId, seed: u64) -> SoftMc {
    let module =
        DramModule::with_geometry(registry::spec(id), seed, Geometry::small_test()).unwrap();
    SoftMc::new(module)
}

#[test]
fn spice_and_behavioral_restoration_agree() {
    // The behavioral model's restore_level is a fit to the SPICE circuit's
    // self-consistent saturation; they must agree within 25 mV over the
    // study's voltage range.
    let params = DramCellParams::default();
    for vpp10 in 15..=25 {
        let vpp = vpp10 as f64 / 10.0;
        let spice = params.restore_saturation(vpp);
        let behavioral = physics::restore_level(vpp);
        assert!(
            (spice - behavioral).abs() < 0.025,
            "at {vpp:.1} V: SPICE {spice:.3} vs behavioral {behavioral:.3}"
        );
    }
}

#[test]
fn same_seed_same_device_full_stack() {
    // The entire measurement pipeline is reproducible per (module, seed).
    let run = || {
        let mut mc = session(ModuleId::B0, 99);
        let cfg = Alg1Config::fast();
        let m = alg1::measure_row(&mut mc, 0, 77, &cfg).unwrap();
        (m.hc_first, m.wcdp)
    };
    assert_eq!(run(), run());
}

#[test]
fn different_specimens_differ() {
    let measure = |seed: u64| {
        let mut mc = session(ModuleId::B0, seed);
        let cfg = Alg1Config::fast();
        alg1::measure_row(&mut mc, 0, 77, &cfg).unwrap().hc_first
    };
    // Same module family, different physical specimen: characteristics vary.
    assert_ne!(measure(1), measure(2));
}

#[test]
fn refresh_defeats_hammering_via_trr_and_restore() {
    // The same attack with periodic REF interleaved flips far fewer bits:
    // refresh restores victims (and lets TRR act). This is exactly why the
    // paper disables refresh during its tests.
    let hc_per_burst = 30_000u64;
    let bursts = 10;
    let flips_with = run_attack_with_refresh(true, hc_per_burst, bursts);
    let flips_without = run_attack_with_refresh(false, hc_per_burst, bursts);
    assert!(
        flips_with < flips_without / 5,
        "refresh must suppress flips: {flips_with} vs {flips_without}"
    );
}

fn run_attack_with_refresh(refresh: bool, hc_per_burst: u64, bursts: usize) -> u32 {
    let mut mc = session(ModuleId::B0, 21);
    let victim = 140;
    let (below, above) = mc.module().mapping().physical_neighbors(victim);
    let (below, above) = (below.unwrap(), above.unwrap());
    let pattern = 0xAAAA_AAAA_AAAA_AAAAu64;
    mc.init_row(0, victim, pattern).unwrap();
    mc.init_row(0, below, !pattern).unwrap();
    mc.init_row(0, above, !pattern).unwrap();
    for _ in 0..bursts {
        mc.hammer_double_sided(0, below, above, hc_per_burst)
            .unwrap();
        if refresh {
            let mut p = Program::new();
            p.push(Instruction::Ref);
            mc.run(&p).unwrap();
        }
    }
    let readout = mc.read_row_conservative(0, victim).unwrap();
    readout.iter().map(|w| (w ^ pattern).count_ones()).sum()
}

#[test]
fn thirty_millisecond_window_has_no_retention_interference() {
    // §4.1's isolation argument, measured: a full 300K double-sided hammer
    // session at 50 °C leaves retention untouched (flips come only from
    // hammering).
    let mut mc = session(ModuleId::C4, 13);
    let pattern = 0x5555_5555_5555_5555u64;
    // Far row: sees no disturbance, only the elapsed time.
    mc.init_row(0, 400, pattern).unwrap();
    mc.init_row(0, 100, pattern).unwrap();
    mc.hammer_double_sided(0, 99, 101, 300_000).unwrap();
    let far = mc.read_row_conservative(0, 400).unwrap();
    assert!(
        far.iter().all(|&w| w == pattern),
        "retention flips leaked into a RowHammer test window"
    );
}

#[test]
fn all_thirty_modules_bring_up_and_find_their_vppmin() {
    for id in ModuleId::ALL {
        let mut mc = session(id, 7);
        let vppmin = mc.find_vppmin().unwrap();
        let expected = registry::spec(id).vpp_min;
        assert!(
            (vppmin - expected).abs() < 1e-9,
            "{id}: measured {vppmin}, Table 3 {expected}"
        );
    }
}

#[test]
fn ecc_crate_integrates_with_device_words() {
    use hammervolt::ecc::hamming::{Codeword, DecodeOutcome};
    let mut mc = session(ModuleId::A3, 5);
    mc.init_row(0, 10, 0x0123_4567_89AB_CDEF).unwrap();
    let word = mc.read_row(0, 10).unwrap()[0];
    let cw = Codeword::encode(word).with_bit_flipped(40);
    match cw.decode() {
        DecodeOutcome::Corrected { data, .. } => assert_eq!(data, word),
        other => panic!("expected correction, got {other:?}"),
    }
}
