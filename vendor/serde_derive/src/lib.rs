//! Offline stub of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored `serde` stub's value-tree model. The input item is parsed by
//! walking raw `proc_macro` token trees (no `syn`/`quote` available offline),
//! which is sufficient for the shapes this workspace uses:
//!
//! - structs with named fields, tuple structs (incl. newtypes), unit structs,
//! - enums with unit, tuple, and struct variants,
//! - arbitrary attributes/doc comments on items, fields, and variants
//!   (skipped; `#[serde(...)]` attributes are NOT interpreted),
//! - no generic parameters (none of the workspace's serialized types are
//!   generic; the macro panics with a clear message if one appears).
//!
//! The generated encoding mirrors serde's externally-tagged defaults: named
//! structs become objects in field-declaration order, newtypes are
//! transparent, unit enum variants become strings, and data-carrying
//! variants become single-entry objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    kind: Kind,
}

/// Derives the stub `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the stub `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Token-tree parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("stub serde_derive: generic type `{name}` is not supported");
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item {
                name,
                kind: Kind::Struct(fields),
            }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("stub serde_derive: malformed enum `{name}`"),
            };
            Item {
                name,
                kind: Kind::Enum(parse_variants(body)),
            }
        }
        other => panic!("stub serde_derive: cannot derive for `{other}` items"),
    }
}

fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
            *i += 1;
        }
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("stub serde_derive: expected identifier, found {other:?}"),
    }
}

/// Advances past a type expression until a top-level comma (or the end),
/// tracking angle-bracket depth so `HashMap<u32, u32>` stays one field.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        names.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("stub serde_derive: expected `:` after field name, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Fields::Named(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                parse_named_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip a `= discriminant` if present, then the separating comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&tokens, &mut i);
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::value::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::value::Value::Array(::std::vec![{}])",
                items.join(", ")
            )
        }
        Kind::Struct(Fields::Unit) => "::serde::value::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => \
                         ::serde::value::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::value::Value::Object(::std::vec![\
                         (::std::string::String::from({v:?}), \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::value::Value::Object(::std::vec![\
                             (::std::string::String::from({v:?}), \
                             ::serde::value::Value::Array(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => \
                             ::serde::value::Value::Object(::std::vec![\
                             (::std::string::String::from({v:?}), \
                             ::serde::value::Value::Object(::std::vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::value::field(__v, {name:?}, {f:?})?,"))
                .collect();
            format!(
                "if __v.as_object().is_none() {{\n\
                 return ::std::result::Result::Err(\
                 ::serde::value::DeError::mismatch({:?}, __v));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                format!("object (struct {name})"),
                inits.join(" ")
            )
        }
        Kind::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::value::Value::Array(__items) if __items.len() == {n} => \
                 ::std::result::Result::Ok({name}({})),\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::value::DeError::mismatch(\"array of {n}\", __other)),\n\
                 }}",
                inits.join(", ")
            )
        }
        Kind::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "{v:?} => ::std::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        Some(format!(
                            "{v:?} => match __inner {{\n\
                             ::serde::value::Value::Array(__items) if __items.len() == {n} => \
                             ::std::result::Result::Ok({name}::{v}({})),\n\
                             __other => ::std::result::Result::Err(\
                             ::serde::value::DeError::mismatch(\"array of {n}\", __other)),\n\
                             }},",
                            inits.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let ctx = format!("{name}::{v}");
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!("{f}: ::serde::value::field(__inner, {ctx:?}, {f:?})?,")
                            })
                            .collect();
                        Some(format!(
                            "{v:?} => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                            inits.join(" ")
                        ))
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::value::Value::Str(__s) => match __s.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::value::DeError::custom(\
                 ::std::format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                 }},\n\
                 ::serde::value::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::value::DeError::custom(\
                 ::std::format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                 }}\n\
                 }}\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::value::DeError::mismatch(\"enum {name}\", __other)),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn from_value(__v: &::serde::value::Value) -> \
         ::std::result::Result<Self, ::serde::value::DeError> {{ {body} }}\n\
         }}"
    )
}
