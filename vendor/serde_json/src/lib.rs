//! Offline stub of `serde_json`.
//!
//! Provides the call surface this workspace uses — [`to_string`],
//! [`to_string_pretty`], [`to_writer`], [`from_str`], and [`Error`] — on top
//! of the vendored `serde` stub's [`Value`] tree.
//!
//! Guarantees the study infrastructure relies on:
//!
//! - **Determinism**: encoding is a pure function of the value tree (struct
//!   fields in declaration order, map keys sorted), so equal values produce
//!   byte-identical text.
//! - **Round-tripping**: floats print via Rust's shortest-round-trip
//!   formatting and parse back bit-exactly.

#![forbid(unsafe_code)]

use serde::value::DeError;
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A JSON encoding/decoding error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("io error: {e}"))
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Infallible for tree-shaped data; kept fallible to match serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes a value to human-readable, 2-space-indented JSON text.
///
/// # Errors
///
/// Infallible for tree-shaped data; kept fallible to match serde_json.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serializes a value as compact JSON into a writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // Rust's shortest-round-trip formatting; parses back bit-exactly.
        out.push_str(&f.to_string());
    } else {
        // serde_json also encodes non-finite floats as null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Handle UTF-16 surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.eat_keyword("\\u") {
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| {
                                Error::new(format!("bad \\u escape at byte {}", self.pos))
                            })?);
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape digits"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            // Integers wider than i128 (e.g. Rust's plain-decimal Display of
            // huge doubles) fall through to the float path.
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        let x: f64 = from_str("0.1").unwrap();
        assert_eq!(x, 0.1);
        let y: Option<u64> = from_str("null").unwrap();
        assert_eq!(y, None);
    }

    #[test]
    fn round_trips_collections() {
        let v = vec![(1.0f64, 2.0f64), (3.5, -0.25)];
        let text = to_string(&v).unwrap();
        let back: Vec<(f64, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_shortest_repr_round_trips_bit_exactly() {
        for &f in &[0.1f64, 1.0 / 3.0, 6.02e23, 5e-324, 1.7976931348623157e308] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn pretty_printing_indents() {
        let v = vec![1u32, 2];
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("1.5x").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
    }
}
