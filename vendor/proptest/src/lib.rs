//! Offline stub of `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], range and
//! [`any`](arbitrary::any) strategies, tuples, [`collection::vec`],
//! [`sample::select`], [`Just`](strategy::Just), and [`prop_oneof!`].
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking** — a failing case reports its inputs and panics.
//! - **Deterministic** — each test's RNG is seeded from the test's name, so
//!   failures reproduce exactly across runs and machines.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The `prop::` namespace tests reach through the prelude
/// (`prop::collection::vec`, `prop::sample::select`, `prop::num::..`).
pub mod prop {
    pub use crate::collection;
    pub use crate::num;
    pub use crate::sample;
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// Accepts an optional leading `#![proptest_config(expr)]`, then any number
/// of `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut __rejected: u32 = 0;
            let mut __case: u32 = 0;
            while __case < __config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                let __inputs = ::std::format!(
                    ::std::concat!($(::std::stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __case += 1,
                    ::std::result::Result::Err(e) if e.is_rejection() => {
                        __rejected += 1;
                        ::std::assert!(
                            __rejected < __config.cases * 64,
                            "proptest {}: too many prop_assume rejections",
                            ::std::stringify!($name),
                        );
                    }
                    ::std::result::Result::Err(e) => ::std::panic!(
                        "proptest case failed: {}\n  inputs: {}",
                        e,
                        __inputs,
                    ),
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let __l = $lhs;
        let __r = $rhs;
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
                    ::std::stringify!($lhs),
                    ::std::stringify!($rhs),
                    __l,
                    __r,
                ),
            ));
        }
    }};
}

/// Skips the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::stringify!($cond),
            ));
        }
    };
}

/// Picks uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($arm)),+
        ])
    };
}
