//! Test-runner support types: configuration, case errors, and the
//! deterministic RNG behind every strategy.

use std::fmt;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was skipped by `prop_assume!`.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A `prop_assume!` rejection.
    pub fn reject(cond: impl Into<String>) -> Self {
        TestCaseError::Reject(cond.into())
    }

    /// Whether this is a rejection (skip) rather than a failure.
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(c) => write!(f, "rejected: {c}"),
            TestCaseError::Fail(m) => f.write_str(m),
        }
    }
}

/// Deterministic splitmix64 stream seeded from the test's name, so every
/// run of a given test explores the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name (FNV-1a over the bytes).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty domain");
        (self.next_u64() % n as u64) as usize
    }
}
