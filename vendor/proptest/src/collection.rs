//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.len.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing vectors of `element` values with lengths in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}
