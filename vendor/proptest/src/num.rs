//! Numeric strategies (`prop::num::f64::NORMAL`).

/// `f64` strategies.
pub mod f64 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing normal (finite, non-zero, non-subnormal) doubles
    /// of either sign across a wide magnitude range.
    #[derive(Debug, Clone, Copy)]
    pub struct NormalF64;

    /// The normal-doubles strategy constant, mirroring
    /// `proptest::num::f64::NORMAL`.
    pub const NORMAL: NormalF64 = NormalF64;

    impl Strategy for NormalF64 {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // mantissa in [0.5, 1), decimal exponent in [-37, 37]: always a
            // normal float, never zero/subnormal/inf/NaN. The exponent range
            // is deliberately narrower than the full double range so tests
            // that `prop_assume!` a moderate magnitude don't starve.
            let mantissa = 0.5 + rng.next_f64() * 0.5;
            let exponent = (rng.next_u64() % 75) as i32 - 37;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * mantissa * 10f64.powi(exponent)
        }
    }
}
