//! The [`Strategy`] trait and primitive strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy over empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty : $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i32: u32, i64: u64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy over empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "strategy over empty range");
        lo + (hi - lo) * rng.next_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Uniform choice between boxed strategies of one value type (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given arms; must be non-empty.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Boxes a strategy, erasing its concrete type (used by
/// [`prop_oneof!`](crate::prop_oneof) so arms of different types unify).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}
