//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// A type with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, well-spread doubles (the workspace's tests never rely on
        // NaN/inf inputs from `any`).
        (rng.next_f64() - 0.5) * 2e12
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
