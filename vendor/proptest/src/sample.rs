//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing uniformly from a fixed set of values.
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.index(self.options.len())].clone()
    }
}

/// A strategy choosing uniformly from `options`; must be non-empty.
#[must_use]
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select over empty options");
    Select { options }
}
