//! Offline stub of `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! The keystream is a genuine ChaCha permutation with 8 rounds, seeded with a
//! 32-byte key, zero stream id, and a 64-bit block counter. Word-for-word
//! output compatibility with the real `rand_chacha` crate is NOT guaranteed
//! (the real crate's `next_u64` consumption order differs); every consumer in
//! this workspace only relies on determinism and statistical quality.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha keystream generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    /// Next unread 32-bit word within `block`; 16 means "exhausted".
    word: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut x = state;
        for _ in 0..4 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (out, (a, b)) in self.block.iter_mut().zip(x.iter().zip(state.iter())) {
            *out = a.wrapping_add(*b);
        }
        self.counter = self.counter.wrapping_add(1);
        self.word = 0;
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            word: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.word + 2 > 16 {
            self.refill();
        }
        let lo = self.block[self.word];
        let hi = self.block[self.word + 1];
        self.word += 2;
        (u64::from(hi) << 32) | u64::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::from_seed([7; 32]);
        let mut b = ChaCha8Rng::from_seed([7; 32]);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = ChaCha8Rng::from_seed([8; 32]);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_inclusive_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-0.05..=0.05);
            assert!((-0.05..=0.05).contains(&v));
        }
    }
}
