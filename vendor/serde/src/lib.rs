//! Offline drop-in subset of `serde`.
//!
//! The real `serde` models serialization through visitor-based `Serializer`/
//! `Deserializer` traits. This vendored subset — built so the workspace
//! compiles and runs with no network access — routes everything through a
//! single JSON-like [`value::Value`] tree instead. The public surface the
//! workspace actually uses is preserved:
//!
//! - `serde::{Serialize, Deserialize}` traits (the `Deserialize` lifetime
//!   parameter is kept so `for<'de> Deserialize<'de>` bounds compile),
//! - `#[derive(Serialize, Deserialize)]` for structs and enums without
//!   `#[serde(...)]` attributes (see the `serde_derive` stub),
//! - the companion `serde_json` stub for text encoding.
//!
//! Determinism note: struct fields serialize in declaration order and map
//! entries in sorted key order, so serialized output is byte-stable — a
//! property the study's cached-sweep layer relies on.

#![forbid(unsafe_code)]

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{DeError, Value};

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
///
/// The `'de` lifetime is unused by this subset (values are owned) but kept so
/// code written against real serde (`for<'de> Deserialize<'de>` bounds)
/// compiles unchanged.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        DeError::custom(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    other => Err(DeError::mismatch(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // i128 covers every value this workspace stores in a u128 (72-bit
        // ECC codewords); larger magnitudes are a logic error.
        Value::Int(i128::try_from(*self).expect("u128 value exceeds i128::MAX"))
    }
}

impl<'de> Deserialize<'de> for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) => u128::try_from(*i)
                .map_err(|_| DeError::custom(format!("integer {i} out of range for u128"))),
            other => Err(DeError::mismatch("u128", other)),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::mismatch("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DeError::mismatch("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for &'static str {
    /// Leaks the parsed string. Only static spec tables (`ModuleSpec`) carry
    /// `&'static str` fields, and they are deserialized at most a handful of
    /// times per process, so the leak is bounded.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::mismatch("string", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::mismatch("single-char string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::mismatch("fixed-length array", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Conversion between map keys and the JSON object-key strings that carry
/// them (JSON object keys are always strings).
pub trait JsonKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back from a JSON object key.
    fn from_key(s: &str) -> Option<Self>;
}

macro_rules! impl_json_key_int {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Option<Self> {
                s.parse().ok()
            }
        }
    )*};
}

impl_json_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Option<Self> {
        Some(s.to_string())
    }
}

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: JsonKey + Ord,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        // Sorted key order keeps serialized output byte-stable regardless of
        // the hasher's iteration order.
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, K, V, S> Deserialize<'de> for std::collections::HashMap<K, V, S>
where
    K: JsonKey + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| {
                    let key = K::from_key(k)
                        .ok_or_else(|| DeError::custom(format!("invalid map key {k:?}")))?;
                    Ok((key, V::from_value(val)?))
                })
                .collect(),
            other => Err(DeError::mismatch("object", other)),
        }
    }
}

impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: JsonKey,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: JsonKey + Ord,
    V: Deserialize<'de>,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| {
                    let key = K::from_key(k)
                        .ok_or_else(|| DeError::custom(format!("invalid map key {k:?}")))?;
                    Ok((key, V::from_value(val)?))
                })
                .collect(),
            other => Err(DeError::mismatch("object", other)),
        }
    }
}
