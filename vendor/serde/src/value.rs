//! The JSON-like value tree every (de)serialization routes through, plus
//! helpers the derive macros generate calls to.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (JSON numbers without a fraction or exponent).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a field of an object; absent fields read as `Null` (which
    /// lets `Option` fields deserialize to `None`, as with real serde).
    pub fn field(&self, name: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == name))
            .map_or(&NULL, |(_, v)| v)
    }

    /// A one-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl crate::Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> crate::Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// A type-mismatch error.
    pub fn mismatch(expected: &str, got: &Value) -> Self {
        DeError {
            msg: format!("expected {expected}, got {}", got.kind()),
        }
    }

    /// Wraps the error with the context of the field it occurred in.
    #[must_use]
    pub fn in_field(self, ty: &str, field: &str) -> Self {
        DeError {
            msg: format!("{ty}.{field}: {}", self.msg),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Deserializes one named field of a struct (derive-generated code calls
/// this). Missing fields read as `Null` so `Option` fields default to `None`.
///
/// # Errors
///
/// Propagates the field's deserialization error, annotated with its name.
pub fn field<'de, T: crate::Deserialize<'de>>(
    v: &Value,
    ty: &str,
    name: &str,
) -> Result<T, DeError> {
    T::from_value(v.field(name)).map_err(|e| e.in_field(ty, name))
}
