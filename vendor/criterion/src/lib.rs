//! Offline stub of `criterion`.
//!
//! Keeps the workspace's `[[bench]]` targets compiling and runnable with no
//! network access. Each `bench_function` performs a short warm-up, then
//! `sample_size` timed samples, and prints median/mean nanoseconds per
//! iteration. There is no statistical analysis, plotting, or baseline
//! comparison.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use std::hint::black_box;

/// Bench harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
        };
        // Warm-up and calibration: grow iterations until one sample takes
        // at least ~1 ms, so timer quantization doesn't dominate.
        f(&mut bencher);
        while bencher.samples.last().is_some_and(|&ns| ns < 1_000_000.0)
            && bencher.iters_per_sample < 1 << 20
        {
            bencher.iters_per_sample *= 4;
            bencher.samples.clear();
            f(&mut bencher);
        }
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let mut per_iter: Vec<f64> = bencher
            .samples
            .iter()
            .map(|&ns| ns / bencher.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = per_iter[per_iter.len() / 2];
        let mean: f64 = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!("{name}: median {median:.1} ns/iter, mean {mean:.1} ns/iter");
        self
    }
}

/// Per-benchmark timing driver passed to the closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times one sample of the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(start.elapsed().as_nanos() as f64);
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
