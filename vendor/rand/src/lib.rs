//! Offline stub of `rand` (0.8-style API surface).
//!
//! Implements the trait shapes this workspace calls — `Rng::gen`,
//! `Rng::gen_range`, `SeedableRng::from_seed`/`seed_from_u64` — without the
//! distribution machinery of the real crate. Generators implement
//! [`RngCore`] and pick up [`Rng`]'s generic helpers through a blanket impl.

#![forbid(unsafe_code)]

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A sampleable output type for [`Rng::gen`] (the stub's stand-in for
/// `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit-precision uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range argument for [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via splitmix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}
